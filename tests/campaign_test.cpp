// Campaign engine: spec expansion, parallel execution, deterministic
// aggregation, and the triad_campaign CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "campaign/aggregate.h"
#include "campaign/cli.h"
#include "campaign/runner.h"
#include "campaign/sim_sweep.h"
#include "campaign/spec.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

namespace triad::campaign {
namespace {

// ---------------------------------------------------------------- spec

TEST(CampaignSpec, ExpandsCartesianGridInFixedOrder) {
  CampaignSpec spec;
  spec.seeds = {1, 2, 3};
  spec.attacks = {"none", "fminus"};
  spec.policies = {"original"};
  spec.environments = {"triad", "low"};
  spec.node_counts = {3};
  EXPECT_EQ(spec.cell_count(), 4u);
  EXPECT_EQ(spec.run_count(), 12u);

  const std::vector<RunSpec> runs = spec.expand();
  ASSERT_EQ(runs.size(), 12u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    EXPECT_EQ(runs[i].cell, i / spec.seeds.size());
  }
  // Seeds innermost, attacks next, environments outer.
  EXPECT_EQ(runs[0].seed, 1u);
  EXPECT_EQ(runs[2].seed, 3u);
  EXPECT_EQ(runs[0].attack, "none");
  EXPECT_EQ(runs[3].attack, "fminus");
  EXPECT_EQ(runs[0].environment, "triad");
  EXPECT_EQ(runs[6].environment, "low");
  EXPECT_EQ(runs[6].attack, "none");
}

TEST(CampaignSpec, ValidateRejectsBadAxes) {
  CampaignSpec spec;
  EXPECT_TRUE(spec.validate().empty());  // defaults are valid
  spec.attacks = {"sneaky"};
  EXPECT_NE(spec.validate().find("attack"), std::string::npos);
  spec = {};
  spec.seeds.clear();
  EXPECT_NE(spec.validate().find("seeds"), std::string::npos);
  spec = {};
  spec.victim = 5;
  spec.node_counts = {3};
  EXPECT_NE(spec.validate().find("victim"), std::string::npos);
  spec = {};
  spec.duration = 0;
  EXPECT_NE(spec.validate().find("duration"), std::string::npos);
}

TEST(CampaignSpec, VictimIndexResolvesZeroToLastNode) {
  RunSpec run;
  run.nodes = 5;
  run.victim = 0;
  EXPECT_EQ(run.victim_index(), 4u);
  run.victim = 2;
  EXPECT_EQ(run.victim_index(), 1u);
}

TEST(CampaignSpec, ParsesKeyValueText) {
  const char* text =
      "# F- seed sweep\n"
      "seeds = 1..4, 10\n"
      "attacks = none, fminus\n"
      "policies = triadplus\n"
      "environments = low\n"
      "nodes = 3, 5\n"
      "duration = 90s\n"
      "attack_delay = 250ms\n"
      "victim = 3\n"
      "machine_interrupts = off\n";
  std::string error;
  const auto spec = parse_spec(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->seeds, (std::vector<std::uint64_t>{1, 2, 3, 4, 10}));
  EXPECT_EQ(spec->attacks, (std::vector<std::string>{"none", "fminus"}));
  EXPECT_EQ(spec->policies, (std::vector<std::string>{"triadplus"}));
  EXPECT_EQ(spec->environments, (std::vector<std::string>{"low"}));
  EXPECT_EQ(spec->node_counts, (std::vector<std::size_t>{3, 5}));
  EXPECT_EQ(spec->duration, seconds(90));
  EXPECT_EQ(spec->attack_delay, milliseconds(250));
  EXPECT_EQ(spec->victim, 3u);
  EXPECT_FALSE(spec->machine_interrupts);
}

TEST(CampaignSpec, ParseRejectsBadSpecs) {
  std::string error;
  EXPECT_FALSE(parse_spec("seeds = 1..4\nbogus_key = 1\n", &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(parse_spec("seeds 1..4\n", &error));
  EXPECT_NE(error.find("key = value"), std::string::npos);
  EXPECT_FALSE(parse_spec("seeds = 4..1\n", &error));
  EXPECT_FALSE(parse_spec("duration = 10\n", &error));
  EXPECT_FALSE(parse_spec("attacks = chaos\n", &error));
  EXPECT_NE(error.find("attack"), std::string::npos);
  EXPECT_FALSE(parse_spec("machine_interrupts = maybe\n", &error));
  EXPECT_FALSE(parse_spec_file("/nonexistent/spec.campaign", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// -------------------------------------------------------------- runner

CampaignSpec small_attack_spec() {
  CampaignSpec spec;
  spec.seeds = {1, 2, 3};
  spec.attacks = {"none", "fminus"};
  spec.duration = seconds(45);
  return spec;
}

TEST(CampaignRunner, ResultsLandInGridOrderWithRealScenarios) {
  RunnerOptions options;
  options.jobs = 4;
  CampaignRunner runner(options);
  const CampaignSpec spec = small_attack_spec();
  const CampaignResult result = runner.run(spec);

  ASSERT_EQ(result.runs.size(), 6u);
  EXPECT_EQ(result.failures, 0u);
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    EXPECT_EQ(result.runs[i].index, i);
    EXPECT_FALSE(result.runs[i].failed);
    EXPECT_GT(result.runs[i].events_executed, 0.0);
  }
  // The F- cell (cell 1) shows the attack: grossly miscalibrated victim.
  EXPECT_NEAR(result.runs[0].victim_freq_mhz, 2900.0, 5.0);
  EXPECT_NEAR(result.runs[3].victim_freq_mhz, 2610.0, 5.0);
}

// The determinism contract: the same spec must produce byte-identical
// aggregate reports at --jobs 1, 4, and 8.
TEST(CampaignDeterminism, ReportsAreByteIdenticalAcrossJobCounts) {
  const CampaignSpec spec = small_attack_spec();
  std::string json[3];
  std::string csv[3];
  const std::size_t jobs[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    RunnerOptions options;
    options.jobs = jobs[i];
    CampaignRunner runner(options);
    const CampaignReport report =
        CampaignReport::aggregate(spec, runner.run(spec));
    std::ostringstream json_out, csv_out;
    report.write_json(json_out);
    report.write_csv(csv_out);
    json[i] = json_out.str();
    csv[i] = csv_out.str();
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(json[0], json[2]);
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(csv[0], csv[2]);
  EXPECT_NE(json[0].find("\"honest_max_jump_ms\""), std::string::npos);
}

TEST(CampaignRunner, FaultInjectedRunFailsOnlyItsCell) {
  CampaignSpec spec;
  spec.seeds = {1, 2};
  spec.attacks = {"none", "fminus"};
  std::atomic<int> executed{0};
  RunnerOptions options;
  options.jobs = 4;
  // Stub run function: index 1 (cell 0, seed 2) blows up in the
  // scenario factory; everything else succeeds.
  options.run_fn = [&executed](const RunSpec& run) -> RunResult {
    executed.fetch_add(1);
    if (run.index == 1) {
      throw std::runtime_error("injected scenario-factory failure");
    }
    RunResult result;
    result.availability = 1.0;
    return result;
  };
  CampaignRunner runner(std::move(options));
  const CampaignResult result = runner.run(spec);

  EXPECT_EQ(executed.load(), 4);  // the campaign still completed
  EXPECT_EQ(result.failures, 1u);
  ASSERT_EQ(result.runs.size(), 4u);
  EXPECT_TRUE(result.runs[1].failed);
  EXPECT_NE(result.runs[1].error.find("injected"), std::string::npos);
  EXPECT_EQ(result.runs[1].index, 1u);  // keeps its grid coordinates
  EXPECT_EQ(result.runs[1].seed, 2u);
  EXPECT_FALSE(result.runs[0].failed);
  EXPECT_FALSE(result.runs[2].failed);
  EXPECT_FALSE(result.runs[3].failed);

  // Aggregation: only cell 0 carries the failure; its stats use the
  // surviving run, and the campaign-level failure count is non-zero.
  const CampaignReport report = CampaignReport::aggregate(spec, result);
  EXPECT_EQ(report.failures, 1u);
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.cells[0].failures, 1u);
  EXPECT_EQ(report.cells[1].failures, 0u);
  EXPECT_EQ(report.cells[0].metrics.front().stat.n, 1u);
  EXPECT_EQ(report.cells[1].metrics.front().stat.n, 2u);
  std::ostringstream json;
  report.write_json(json);
  EXPECT_NE(json.str().find("\"failures\": 1"), std::string::npos);
}

TEST(CampaignRunner, HooksConfigureCustomizeAndInspectRun) {
  CampaignSpec spec;
  spec.seeds = {6};
  spec.attacks = {"fminus"};
  spec.duration = seconds(30);
  RunnerOptions options;
  options.run.configure = [](const RunSpec&, exp::ScenarioConfig& cfg) {
    cfg.environments = {exp::AexEnvironment::kLowAex,
                        exp::AexEnvironment::kLowAex,
                        exp::AexEnvironment::kTriadLike};
  };
  std::atomic<int> customized{0};
  options.run.customize = [&customized](const RunSpec&, exp::Scenario&) {
    customized.fetch_add(1);
  };
  options.run.inspect = [](const RunSpec&, exp::Scenario& scenario,
                           const exp::Recorder&, RunResult& result) {
    result.extra.emplace_back(
        "victim_freq_hz",
        scenario.node(2).calibrated_frequency_hz());
  };
  CampaignRunner runner(std::move(options));
  const CampaignResult result = runner.run(spec);
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(customized.load(), 1);
  ASSERT_EQ(result.runs[0].extra.size(), 1u);
  EXPECT_EQ(result.runs[0].extra[0].first, "victim_freq_hz");

  // Extras surface in the aggregate report after the built-ins.
  const CampaignReport report = CampaignReport::aggregate(spec, result);
  ASSERT_FALSE(report.cells.empty());
  EXPECT_EQ(report.cells[0].metrics.back().name, "victim_freq_hz");
  EXPECT_GT(report.cells[0].metrics.back().stat.mean, 1e9);
}

// ----------------------------------------------------------- aggregate

TEST(Aggregate, StatOrderStatistics) {
  const Stat stat = Stat::of({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(stat.mean, 2.5);
  EXPECT_DOUBLE_EQ(stat.min, 1.0);
  EXPECT_DOUBLE_EQ(stat.max, 4.0);
  EXPECT_DOUBLE_EQ(stat.p50, 2.0);  // nearest-rank: ceil(0.5*4) = 2nd
  EXPECT_DOUBLE_EQ(stat.p95, 4.0);
  EXPECT_EQ(stat.n, 4u);
  const Stat empty = Stat::of({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Aggregate, RejectsMismatchedResults) {
  const CampaignSpec spec = small_attack_spec();
  CampaignResult result;
  result.runs.resize(2);  // spec expands to 6
  EXPECT_THROW(CampaignReport::aggregate(spec, result),
               std::invalid_argument);
}

// ------------------------------------------------------------------ cli

std::optional<CampaignCliOptions> parse(std::vector<const char*> args,
                                        std::string* error = nullptr) {
  args.insert(args.begin(), "triad_campaign");
  std::string local_error;
  return parse_campaign_cli(static_cast<int>(args.size()), args.data(),
                            error != nullptr ? error : &local_error);
}

TEST(CampaignCli, ParsesGridFlags) {
  const auto options =
      parse({"--seeds", "1..8,20", "--attack", "none,fminus", "--policy",
             "original,triadplus", "--env", "low", "--nodes", "3,5",
             "--duration", "90s", "--attack-delay", "50ms", "--victim", "2",
             "--jobs", "8", "--json", "report.json", "--csv", "-",
             "--metrics-dir", "runs", "--no-machine-interrupts"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->spec.seeds.size(), 9u);
  EXPECT_EQ(options->spec.seeds.back(), 20u);
  EXPECT_EQ(options->spec.attacks,
            (std::vector<std::string>{"none", "fminus"}));
  EXPECT_EQ(options->spec.policies,
            (std::vector<std::string>{"original", "triadplus"}));
  EXPECT_EQ(options->spec.environments, (std::vector<std::string>{"low"}));
  EXPECT_EQ(options->spec.node_counts, (std::vector<std::size_t>{3, 5}));
  EXPECT_EQ(options->spec.duration, seconds(90));
  EXPECT_EQ(options->spec.attack_delay, milliseconds(50));
  EXPECT_EQ(options->spec.victim, 2u);
  EXPECT_FALSE(options->spec.machine_interrupts);
  EXPECT_EQ(options->jobs, 8u);
  EXPECT_EQ(options->json_path, "report.json");
  EXPECT_EQ(options->csv_path, "-");
  EXPECT_EQ(options->metrics_dir, "runs");
}

TEST(CampaignCli, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(parse({"--bogus"}, &error).has_value());
  EXPECT_NE(error.find("unknown flag"), std::string::npos);
  EXPECT_FALSE(parse({"--seeds", "4..1"}, &error).has_value());
  EXPECT_FALSE(parse({"--attack", "chaos"}, &error).has_value());
  EXPECT_FALSE(parse({"--nodes", "0"}, &error).has_value());
  EXPECT_FALSE(parse({"--jobs", "0"}, &error).has_value());
  EXPECT_FALSE(parse({"--victim", "9"}, &error).has_value());
  EXPECT_FALSE(
      parse({"--json", "-", "--csv", "-"}, &error).has_value());
  EXPECT_NE(error.find("at most one"), std::string::npos);
  EXPECT_TRUE(parse({"--help"})->help);
  EXPECT_FALSE(campaign_cli_usage().empty());
}

TEST(CampaignCli, RunsEndToEndWithStreamRules) {
  const auto options = parse({"--seeds", "1..2", "--attack", "fminus",
                              "--duration", "30s", "--jobs", "2"});
  ASSERT_TRUE(options.has_value());
  std::ostringstream out, err;
  EXPECT_EQ(run_campaign_cli(*options, out, err), 0);
  // JSON report on stdout (default), summary on the error stream.
  EXPECT_EQ(out.str().find("campaign:"), std::string::npos);
  EXPECT_NE(out.str().find("\"cells\""), std::string::npos);
  EXPECT_NE(out.str().find("\"honest_max_jump_ms\""), std::string::npos);
  EXPECT_NE(err.str().find("campaign: cells=1 runs=2 failures=0"),
            std::string::npos);
}

// triad_sim's sweep mode drives the same engine.
TEST(SimSweep, SeedRangeProducesAggregateReport) {
  exp::CliOptions options;
  options.seed_range = {{1, 3}};
  options.duration = seconds(30);
  options.attack = "fminus";
  options.jobs = 2;
  ASSERT_TRUE(exp::is_sweep(options));
  std::ostringstream out, err;
  EXPECT_EQ(run_sim_sweep(options, out, err), 0);
  EXPECT_NE(out.str().find("\"runs\": 3"), std::string::npos);
  EXPECT_NE(err.str().find("sweep: seeds=1..3"), std::string::npos);

  // Byte-identical across jobs from this entry point too.
  exp::CliOptions serial = options;
  serial.jobs = 1;
  std::ostringstream out1, err1;
  EXPECT_EQ(run_sim_sweep(serial, out1, err1), 0);
  EXPECT_EQ(out.str(), out1.str());
}

}  // namespace
}  // namespace triad::campaign
