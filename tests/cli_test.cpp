// CLI parser and runner (the triad_sim tool's engine).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "exp/cli.h"

namespace triad::exp {
namespace {

std::optional<CliOptions> parse(std::vector<const char*> args,
                                std::string* error = nullptr) {
  args.insert(args.begin(), "triad_sim");
  std::string local_error;
  return parse_cli(static_cast<int>(args.size()), args.data(),
                   error != nullptr ? error : &local_error);
}

TEST(CliParser, DefaultsWhenNoFlags) {
  const auto options = parse({});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->nodes, 3u);
  EXPECT_EQ(options->seed, 1u);
  EXPECT_EQ(options->duration, minutes(10));
  EXPECT_EQ(options->attack, "none");
  EXPECT_EQ(options->policy, "original");
  EXPECT_FALSE(options->csv_path.has_value());
  EXPECT_FALSE(options->help);
}

TEST(CliParser, ParsesAllFlags) {
  const auto options =
      parse({"--seed", "42", "--nodes", "5", "--duration", "30m",
             "--attack", "fminus", "--victim", "2", "--attack-delay",
             "250ms", "--policy", "triadplus", "--env", "low", "--env",
             "triad", "--no-machine-interrupts", "--csv", "out.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->seed, 42u);
  EXPECT_EQ(options->nodes, 5u);
  EXPECT_EQ(options->duration, minutes(30));
  EXPECT_EQ(options->attack, "fminus");
  EXPECT_EQ(options->victim, 2u);
  EXPECT_EQ(options->attack_delay, milliseconds(250));
  EXPECT_EQ(options->policy, "triadplus");
  EXPECT_EQ(options->environments,
            (std::vector<std::string>{"low", "triad"}));
  EXPECT_FALSE(options->machine_interrupts);
  EXPECT_EQ(options->csv_path, "out.csv");
}

TEST(CliParser, DurationUnits) {
  EXPECT_EQ(parse({"--duration", "90s"})->duration, seconds(90));
  EXPECT_EQ(parse({"--duration", "500ms"})->duration, milliseconds(500));
  EXPECT_EQ(parse({"--duration", "8h"})->duration, hours(8));
}

TEST(CliParser, HelpShortCircuits) {
  EXPECT_TRUE(parse({"--help"})->help);
  EXPECT_TRUE(parse({"-h", "--bogus-after-help-is-fine"})->help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(CliParser, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(parse({"--bogus"}, &error).has_value());
  EXPECT_NE(error.find("unknown flag"), std::string::npos);
  EXPECT_FALSE(parse({"--seed"}, &error).has_value());      // missing value
  EXPECT_FALSE(parse({"--seed", "xyz"}, &error).has_value());
  EXPECT_FALSE(parse({"--nodes", "0"}, &error).has_value());
  EXPECT_FALSE(parse({"--duration", "10"}, &error).has_value());  // no unit
  EXPECT_FALSE(parse({"--duration", "m10"}, &error).has_value());
  EXPECT_FALSE(parse({"--attack", "f?"}, &error).has_value());
  EXPECT_FALSE(parse({"--policy", "magic"}, &error).has_value());
  EXPECT_FALSE(parse({"--env", "chaotic"}, &error).has_value());
  EXPECT_FALSE(parse({"--victim", "9"}, &error).has_value());  // > nodes
  EXPECT_FALSE(
      parse({"--nodes", "1", "--env", "low", "--env", "low"}, &error)
          .has_value());
}

TEST(CliParser, GeoAndAttestationFlags) {
  const auto options =
      parse({"--machine", "0", "--machine", "0", "--machine", "1",
             "--wan-delay", "50ms", "--attested"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->machines, (std::vector<std::size_t>{0, 0, 1}));
  EXPECT_EQ(options->wan_delay, milliseconds(50));
  EXPECT_TRUE(options->attested);
  std::string error;
  EXPECT_FALSE(parse({"--machine", "x"}, &error).has_value());
  EXPECT_FALSE(parse({"--wan-delay", "0ms"}, &error).has_value());
  EXPECT_FALSE(parse({"--nodes", "1", "--machine", "0", "--machine", "1"},
                     &error)
                   .has_value());
}

TEST(CliParser, SeedSweepFlags) {
  const auto range = parse({"--seeds", "1..32", "--jobs", "4"});
  ASSERT_TRUE(range.has_value());
  ASSERT_TRUE(range->seed_range.has_value());
  EXPECT_EQ(range->seed_range->first, 1u);
  EXPECT_EQ(range->seed_range->second, 32u);
  EXPECT_EQ(range->jobs, 4u);
  EXPECT_TRUE(is_sweep(*range));
  EXPECT_EQ(sweep_seeds(*range).size(), 32u);
  EXPECT_EQ(sweep_seeds(*range).front(), 1u);
  EXPECT_EQ(sweep_seeds(*range).back(), 32u);

  // A single-value range is a one-run sweep.
  const auto single = parse({"--seeds", "7..7"});
  ASSERT_TRUE(single.has_value());
  EXPECT_TRUE(is_sweep(*single));
  EXPECT_EQ(sweep_seeds(*single), (std::vector<std::uint64_t>{7}));

  // --repeat N expands to seed..seed+N-1.
  const auto repeat = parse({"--seed", "10", "--repeat", "3"});
  ASSERT_TRUE(repeat.has_value());
  EXPECT_TRUE(is_sweep(*repeat));
  EXPECT_EQ(sweep_seeds(*repeat), (std::vector<std::uint64_t>{10, 11, 12}));

  // Plain --seed stays a single run.
  const auto plain = parse({"--seed", "10"});
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(is_sweep(*plain));
  EXPECT_EQ(sweep_seeds(*plain), (std::vector<std::uint64_t>{10}));
}

TEST(CliParser, RejectsConflictingSeedFlags) {
  std::string error;
  EXPECT_FALSE(parse({"--seed", "5", "--seeds", "1..4"}, &error).has_value());
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos);
  // Order must not matter.
  EXPECT_FALSE(parse({"--seeds", "1..4", "--seed", "5"}, &error).has_value());
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos);
  EXPECT_FALSE(
      parse({"--seeds", "1..4", "--repeat", "2"}, &error).has_value());
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos);
}

TEST(CliParser, RejectsBadSweepValues) {
  std::string error;
  EXPECT_FALSE(parse({"--seeds", "9..2"}, &error).has_value());  // hi < lo
  EXPECT_NE(error.find("--seeds"), std::string::npos);
  EXPECT_FALSE(parse({"--seeds", "abc"}, &error).has_value());
  EXPECT_FALSE(parse({"--seeds", "1.."}, &error).has_value());
  EXPECT_FALSE(parse({"--repeat", "0"}, &error).has_value());
  EXPECT_FALSE(parse({"--jobs", "0"}, &error).has_value());
  // Per-run outputs are rejected in sweep mode.
  EXPECT_FALSE(
      parse({"--seeds", "1..4", "--metrics", "-"}, &error).has_value());
  EXPECT_NE(error.find("per-run"), std::string::npos);
  EXPECT_FALSE(
      parse({"--repeat", "2", "--trace", "t.jsonl"}, &error).has_value());
}

TEST(CliParser, SeedRangeParser) {
  std::uint64_t lo = 0, hi = 0;
  EXPECT_TRUE(parse_seed_range("3..17", &lo, &hi));
  EXPECT_EQ(lo, 3u);
  EXPECT_EQ(hi, 17u);
  EXPECT_TRUE(parse_seed_range("5", &lo, &hi));
  EXPECT_EQ(lo, 5u);
  EXPECT_EQ(hi, 5u);
  EXPECT_FALSE(parse_seed_range("5..4", &lo, &hi));
  EXPECT_FALSE(parse_seed_range("..4", &lo, &hi));
  EXPECT_FALSE(parse_seed_range("4..x", &lo, &hi));
}

TEST(CliRunner, GeoDistributedAttestedRun) {
  const auto options = parse({"--duration", "2m", "--machine", "0",
                              "--machine", "1", "--machine", "2",
                              "--attested"});
  ASSERT_TRUE(options.has_value());
  std::ostringstream out;
  EXPECT_EQ(run_cli(*options, out), 0);
  EXPECT_NE(out.str().find("node 3:"), std::string::npos);
}

TEST(CliRunner, RunsAndSummarizes) {
  const auto options = parse({"--duration", "2m", "--seed", "9"});
  ASSERT_TRUE(options.has_value());
  std::ostringstream out;
  EXPECT_EQ(run_cli(*options, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("node 1:"), std::string::npos);
  EXPECT_NE(text.find("node 3:"), std::string::npos);
  EXPECT_NE(text.find("F_calib="), std::string::npos);
  EXPECT_NE(text.find("ta requests served"), std::string::npos);
}

TEST(CliRunner, AttackFlagChangesOutcome) {
  std::ostringstream clean_out, attacked_out;
  run_cli(*parse({"--duration", "5m", "--seed", "9"}), clean_out);
  run_cli(*parse({"--duration", "5m", "--seed", "9", "--attack", "fminus"}),
          attacked_out);
  EXPECT_NE(clean_out.str(), attacked_out.str());
  // The attacked run shows a grossly miscalibrated victim (≈2610 MHz).
  EXPECT_NE(attacked_out.str().find("F_calib=2609"), std::string::npos);
}

TEST(CliRunner, CsvToStdout) {
  std::ostringstream out;
  EXPECT_EQ(
      run_cli(*parse({"--duration", "1m", "--csv", "-"}), out), 0);
  EXPECT_NE(out.str().find("time_s,drift_ms_node1"), std::string::npos);
}

TEST(CliParser, RejectsMultipleStdoutTargets) {
  std::string error;
  EXPECT_FALSE(parse({"--csv", "-", "--metrics", "-"}, &error).has_value());
  EXPECT_NE(error.find("at most one"), std::string::npos);
  EXPECT_FALSE(parse({"--metrics", "-", "--trace", "-"}, &error).has_value());
  // One stdout target plus file targets is fine.
  EXPECT_TRUE(parse({"--csv", "-", "--metrics", "m.prom"}).has_value());
}

TEST(CliRunner, CsvStdoutMovesSummaryToErrStream) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(*parse({"--duration", "1m", "--csv", "-"}), out, err), 0);
  // stdout carries only the machine-readable CSV...
  EXPECT_NE(out.str().find("time_s,drift_ms_node1"), std::string::npos);
  EXPECT_EQ(out.str().find("scenario:"), std::string::npos);
  // ...and the human summary lands on the error stream.
  EXPECT_NE(err.str().find("scenario:"), std::string::npos);
  EXPECT_NE(err.str().find("node 1:"), std::string::npos);
}

TEST(CliRunner, SummaryStaysOnStdoutWithoutMachineOutput) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(*parse({"--duration", "1m"}), out, err), 0);
  EXPECT_NE(out.str().find("scenario:"), std::string::npos);
  EXPECT_TRUE(err.str().empty());
}

TEST(CliRunner, MetricsToStdout) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(*parse({"--duration", "1m", "--metrics", "-"}), out, err),
            0);
  EXPECT_NE(out.str().find("# TYPE triad_sim_events_scheduled_total counter"),
            std::string::npos);
  EXPECT_NE(out.str().find("triad_node_adoptions_total"), std::string::npos);
  EXPECT_NE(err.str().find("adoption events:"), std::string::npos);
}

TEST(CliRunner, TraceToStdoutEmitsJsonl) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(*parse({"--duration", "1m", "--seed", "9", "--attack",
                            "fminus", "--trace", "-"}),
                    out, err),
            0);
  EXPECT_NE(out.str().find("\"type\":\"packet_send\""), std::string::npos);
  EXPECT_NE(out.str().find("\"type\":\"state_change\""), std::string::npos);
  EXPECT_NE(err.str().find("trace events:"), std::string::npos);
}

TEST(CliRunner, HelpPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(*parse({"--help"}), out), 0);
  EXPECT_NE(out.str().find("--attack"), std::string::npos);
}

}  // namespace
}  // namespace triad::exp
