// SecureChannel: key derivation, framing, authentication, replay and
// misdelivery handling — the guarantees the Triad attacker must NOT be
// able to break (it can only delay/drop/reorder).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/channel.h"

namespace triad::crypto {
namespace {

Bytes secret() { return Bytes(32, 0x5a); }

TEST(ClusterKeyring, DirectionKeysAreDistinct) {
  ClusterKeyring keyring(secret());
  const Bytes k12 = keyring.direction_key(1, 2);
  const Bytes k21 = keyring.direction_key(2, 1);
  const Bytes k13 = keyring.direction_key(1, 3);
  EXPECT_EQ(k12.size(), kAes256KeySize);
  EXPECT_NE(k12, k21);
  EXPECT_NE(k12, k13);
}

TEST(ClusterKeyring, DeterministicDerivation) {
  ClusterKeyring a(secret());
  ClusterKeyring b(secret());
  EXPECT_EQ(a.direction_key(4, 9), b.direction_key(4, 9));
}

TEST(ClusterKeyring, DifferentMasterSecretsDiffer) {
  ClusterKeyring a(secret());
  ClusterKeyring b(Bytes(32, 0xa5));
  EXPECT_NE(a.direction_key(1, 2), b.direction_key(1, 2));
}

class SecureChannelTest : public ::testing::Test {
 protected:
  ClusterKeyring keyring_{secret()};
  SecureChannel alice_{1, keyring_};
  SecureChannel bob_{2, keyring_};
  SecureChannel carol_{3, keyring_};
};

TEST_F(SecureChannelTest, RoundTrip) {
  const Bytes msg = {10, 20, 30};
  const Bytes frame = alice_.seal(2, msg);
  const auto opened = bob_.open(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->sender, 1u);
  EXPECT_EQ(opened->plaintext, msg);
}

TEST_F(SecureChannelTest, CiphertextHidesPlaintext) {
  const Bytes msg(64, 0x77);
  const Bytes frame = alice_.seal(2, msg);
  // The payload bytes must not appear in the clear anywhere in the frame.
  for (std::size_t i = 0; i + msg.size() <= frame.size(); ++i) {
    EXPECT_NE(0, std::memcmp(frame.data() + i, msg.data(), msg.size()));
  }
}

TEST_F(SecureChannelTest, WrongReceiverRejected) {
  const Bytes frame = alice_.seal(2, Bytes{1});
  OpenError err{};
  EXPECT_FALSE(carol_.open(frame, &err).has_value());
  EXPECT_EQ(err, OpenError::kWrongReceiver);
}

TEST_F(SecureChannelTest, TamperedFrameRejected) {
  Bytes frame = alice_.seal(2, Bytes{1, 2, 3, 4});
  frame[frame.size() - 1] ^= 0x01;  // flip a tag bit
  OpenError err{};
  EXPECT_FALSE(bob_.open(frame, &err).has_value());
  EXPECT_EQ(err, OpenError::kAuthFailed);
}

TEST_F(SecureChannelTest, TamperedHeaderRejected) {
  Bytes frame = alice_.seal(2, Bytes{1, 2, 3, 4});
  frame[0] ^= 0x02;  // corrupt sender id (part of AAD)
  OpenError err{};
  EXPECT_FALSE(bob_.open(frame, &err).has_value());
  EXPECT_EQ(err, OpenError::kAuthFailed);
}

TEST_F(SecureChannelTest, TruncatedFrameMalformed) {
  Bytes frame = alice_.seal(2, Bytes{1, 2, 3, 4});
  frame.resize(frame.size() / 2);
  OpenError err{};
  EXPECT_FALSE(bob_.open(frame, &err).has_value());
  EXPECT_EQ(err, OpenError::kMalformed);
}

TEST_F(SecureChannelTest, EmptyFrameMalformed) {
  OpenError err{};
  EXPECT_FALSE(bob_.open(Bytes{}, &err).has_value());
  EXPECT_EQ(err, OpenError::kMalformed);
}

TEST_F(SecureChannelTest, ReplayRejected) {
  const Bytes frame = alice_.seal(2, Bytes{5});
  EXPECT_TRUE(bob_.open(frame).has_value());
  OpenError err{};
  EXPECT_FALSE(bob_.open(frame, &err).has_value());
  EXPECT_EQ(err, OpenError::kReplayed);
}

TEST_F(SecureChannelTest, ReorderedFrameWithinWindowAccepted) {
  // UDP reorders datagrams; the sliding window must tolerate that.
  const Bytes f1 = alice_.seal(2, Bytes{1});
  const Bytes f2 = alice_.seal(2, Bytes{2});
  EXPECT_TRUE(bob_.open(f2).has_value());
  const auto late = bob_.open(f1);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->plaintext, Bytes{1});
  // ...but the late frame still cannot be replayed afterwards.
  OpenError err{};
  EXPECT_FALSE(bob_.open(f1, &err).has_value());
  EXPECT_EQ(err, OpenError::kReplayed);
}

TEST_F(SecureChannelTest, FrameOlderThanWindowRejected) {
  const Bytes ancient = alice_.seal(2, Bytes{0});
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(bob_.open(alice_.seal(2, Bytes{1})).has_value());
  }
  OpenError err{};
  EXPECT_FALSE(bob_.open(ancient, &err).has_value());
  EXPECT_EQ(err, OpenError::kReplayed);
}

TEST_F(SecureChannelTest, HeavyReorderingAllFramesAcceptedOnce) {
  // Deliver 64 frames in reverse order: all fresh, then all replays.
  std::vector<Bytes> frames;
  for (int i = 0; i < 64; ++i) {
    frames.push_back(alice_.seal(2, Bytes{static_cast<std::uint8_t>(i)}));
  }
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    EXPECT_TRUE(bob_.open(*it).has_value());
  }
  for (const Bytes& frame : frames) {
    EXPECT_FALSE(bob_.open(frame).has_value());
  }
}

TEST_F(SecureChannelTest, CountersIndependentPerSender) {
  const Bytes fa = alice_.seal(2, Bytes{1});
  const Bytes fc = carol_.seal(2, Bytes{2});
  EXPECT_TRUE(bob_.open(fa).has_value());
  EXPECT_TRUE(bob_.open(fc).has_value());
}

TEST_F(SecureChannelTest, ManyMessagesBothDirections) {
  for (int i = 0; i < 100; ++i) {
    const Bytes msg = {static_cast<std::uint8_t>(i)};
    const auto to_bob = bob_.open(alice_.seal(2, msg));
    ASSERT_TRUE(to_bob.has_value());
    EXPECT_EQ(to_bob->plaintext, msg);
    const auto to_alice = alice_.open(bob_.seal(1, msg));
    ASSERT_TRUE(to_alice.has_value());
    EXPECT_EQ(to_alice->sender, 2u);
  }
}

TEST_F(SecureChannelTest, CrossChannelFramesDoNotConfuse) {
  // A frame alice->bob must not open as carol->bob even if delivered to
  // the right node (distinct direction keys).
  const Bytes frame = alice_.seal(2, Bytes{9});
  const auto opened = bob_.open(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->sender, 1u);
}

TEST_F(SecureChannelTest, EmptyPayloadSupported) {
  const auto opened = bob_.open(alice_.seal(2, Bytes{}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->plaintext.empty());
}

}  // namespace
}  // namespace triad::crypto
