// Coverage for the obs/prof scope profiler: tree shape and counts,
// disabled no-op behaviour, deterministic multi-thread merge, the three
// render targets (text / Chrome trace / registry histograms), and the
// campaign-level guarantee that a normalized profile is byte-identical
// across --jobs counts.
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "campaign/runner.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace {

using triad::obs::ProfNode;
using triad::obs::Profiler;
using triad::obs::ProfTree;

/// Every prof test owns the process-global profiler for its duration.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().reset();
  }
  void TearDown() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().reset();
  }
};

std::uint64_t bucket_sum(const ProfNode& node) {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : node.buckets) sum += c;
  return sum;
}

void nested_workload() {
  PROF_SCOPE("test/outer");
  for (int i = 0; i < 3; ++i) {
    PROF_SCOPE("test/inner");
  }
}

TEST_F(ProfTest, DisabledScopesAreNoOps) {
  nested_workload();  // profiler disabled: nothing may register
  const ProfTree tree = Profiler::instance().merge();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.threads, 0u);
}

TEST_F(ProfTest, BuildsNestedTreeWithCountsAndBuckets) {
  Profiler::instance().set_enabled(true);
  nested_workload();
  {
    PROF_SCOPE("test/aside");
  }
  Profiler::instance().set_enabled(false);
  const ProfTree tree = Profiler::instance().merge();

  ASSERT_EQ(tree.root.children.size(), 2u);
  // Children are sorted by name: "test/aside" < "test/outer".
  EXPECT_EQ(tree.root.children[0].name, "test/aside");
  EXPECT_EQ(tree.root.children[1].name, "test/outer");

  const ProfNode& outer = tree.root.children[1];
  EXPECT_EQ(outer.count, 1u);
  ASSERT_EQ(outer.children.size(), 1u);
  const ProfNode& inner = outer.children[0];
  EXPECT_EQ(inner.name, "test/inner");
  EXPECT_EQ(inner.count, 3u);
  // Inclusive time covers the children; exclusive never exceeds it.
  EXPECT_GE(outer.incl_ns, inner.incl_ns);
  EXPECT_LE(outer.excl_ns(), outer.incl_ns);
  // One histogram observation per call.
  EXPECT_EQ(bucket_sum(outer), outer.count);
  EXPECT_EQ(bucket_sum(inner), inner.count);
}

TEST_F(ProfTest, MergeUnionsThreadTreesDeterministically) {
  Profiler::instance().set_enabled(true);
  {
    PROF_SCOPE("test/shared");
  }
  std::vector<std::thread> threads;
  threads.reserve(2);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] {
      PROF_SCOPE("test/shared");
      PROF_SCOPE("test/worker_only");
    });
  }
  for (std::thread& t : threads) t.join();
  Profiler::instance().set_enabled(false);
  const ProfTree tree = Profiler::instance().merge();

  EXPECT_EQ(tree.threads, 3u);
  ASSERT_EQ(tree.root.children.size(), 1u);
  const ProfNode& shared = tree.root.children[0];
  EXPECT_EQ(shared.name, "test/shared");
  EXPECT_EQ(shared.count, 3u);  // 1 main + 2 workers, summed
  ASSERT_EQ(shared.children.size(), 1u);
  EXPECT_EQ(shared.children[0].name, "test/worker_only");
  EXPECT_EQ(shared.children[0].count, 2u);
}

TEST_F(ProfTest, NormalizedTextIsByteIdenticalAcrossRuns) {
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(true);
    nested_workload();
    Profiler::instance().set_enabled(false);
    std::ostringstream text;
    Profiler::write_text(Profiler::instance().merge(), text,
                         /*normalize=*/true);
    *out = text.str();
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("test/outer"), std::string::npos);
  EXPECT_NE(first.find("test/inner"), std::string::npos);
}

TEST_F(ProfTest, ChromeTraceIsValidNestedJson) {
  Profiler::instance().set_enabled(true);
  nested_workload();
  Profiler::instance().set_enabled(false);
  std::ostringstream out;
  Profiler::write_chrome_trace(Profiler::instance().merge(), out);

  const triad::tools::JsonValue doc =
      triad::tools::parse_json_or_throw(out.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_GE(events.size(), 2u);
  bool saw_inner = false;
  for (const auto& event : events) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    EXPECT_GE(event.at("ts").as_number(), 0.0);
    saw_inner |= event.at("name").as_string() == "test/inner";
  }
  EXPECT_TRUE(saw_inner);
}

TEST_F(ProfTest, ExportHistogramsRendersPrometheusSeries) {
  Profiler::instance().set_enabled(true);
  nested_workload();
  Profiler::instance().set_enabled(false);

  triad::obs::Registry registry;
  Profiler::export_histograms(Profiler::instance().merge(), registry);
  std::ostringstream out;
  triad::obs::write_prometheus(registry, out);
  const std::string text = out.str();

  EXPECT_NE(text.find("triad_prof_scope_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("triad_prof_scope_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("triad_prof_scope_seconds_count"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // Paths are slash-joined down the tree.
  EXPECT_NE(text.find("path=\"test/outer/test/inner\""), std::string::npos);
}

TEST_F(ProfTest, CampaignNormalizedProfileIdenticalAcrossJobs) {
  triad::campaign::CampaignSpec spec;
  spec.seeds = {1, 2};
  spec.attacks = {"fminus"};
  spec.duration = triad::seconds(30);

  std::string profiles[2];
  const std::size_t jobs[2] = {1, 4};
  for (int leg = 0; leg < 2; ++leg) {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(true);
    triad::campaign::RunnerOptions options;
    options.jobs = jobs[leg];
    triad::campaign::CampaignRunner runner(std::move(options));
    const triad::campaign::CampaignResult result = runner.run(spec);
    Profiler::instance().set_enabled(false);
    EXPECT_EQ(result.failures, 0u);
    std::ostringstream text;
    Profiler::write_text(Profiler::instance().merge(), text,
                         /*normalize=*/true);
    profiles[leg] = text.str();
  }
  EXPECT_EQ(profiles[0], profiles[1]);
  EXPECT_NE(profiles[0].find("campaign/execute_run"), std::string::npos);
  EXPECT_NE(profiles[0].find("campaign/sim_run"), std::string::npos);
}

}  // namespace
