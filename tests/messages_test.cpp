// Wire message codec: round trips, malformed-input rejection, and the
// Time Authority's request/response behaviour over the network.
#include <gtest/gtest.h>

#include "crypto/channel.h"
#include "net/network.h"
#include "runtime/sim_env.h"
#include "sim/simulation.h"
#include "ta/time_authority.h"
#include "triad/messages.h"

namespace triad::proto {
namespace {

template <typename T>
T round_trip(const T& in) {
  const auto decoded = decode(encode(Message{in}));
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
  return std::get<T>(*decoded);
}

TEST(Messages, TaRequestRoundTrip) {
  TaRequest m{.request_id = 42, .wait = seconds(1)};
  EXPECT_EQ(round_trip(m), m);
  // The causal span id rides inside the sealed request.
  m.span = 0x1403;  // node 3, seq 5
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, TaResponseRoundTrip) {
  TaResponse m{.request_id = 7,
               .ta_time = seconds(12345) + 678,
               .requested_wait = 0};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, PeerTimeRequestRoundTrip) {
  PeerTimeRequest m{.request_id = 99};
  EXPECT_EQ(round_trip(m), m);
  m.span = 0x2801;  // node 1, seq 10
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, PeerTimeResponseRoundTrip) {
  PeerTimeResponse m{.request_id = 3,
                     .timestamp = hours(2),
                     .error_bound = milliseconds(4),
                     .tainted = true};
  EXPECT_EQ(round_trip(m), m);
  m.tainted = false;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Messages, NegativeTaWaitRejected) {
  TaRequest m{.request_id = 1, .wait = -seconds(1)};
  EXPECT_FALSE(decode(encode(Message{m})).has_value());
}

TEST(Messages, MalformedInputsRejectedNotThrown) {
  EXPECT_FALSE(decode(Bytes{}).has_value());
  EXPECT_FALSE(decode(Bytes{0}).has_value());     // tag 0 unknown
  EXPECT_FALSE(decode(Bytes{99}).has_value());    // unknown tag
  EXPECT_FALSE(decode(Bytes{1, 2, 3}).has_value());  // truncated TaRequest
  // Valid message with trailing garbage.
  Bytes ok = encode(Message{PeerTimeRequest{.request_id = 1}});
  ok.push_back(0);
  EXPECT_FALSE(decode(ok).has_value());
}

TEST(Messages, TruncationAtEveryPointRejected) {
  const Bytes full = encode(Message{TaResponse{
      .request_id = 5, .ta_time = seconds(9), .requested_wait = seconds(1)}});
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(decode(BytesView(full.data(), len)).has_value())
        << "length " << len;
  }
  EXPECT_TRUE(decode(full).has_value());
}

}  // namespace
}  // namespace triad::proto

namespace triad::ta {
namespace {

struct TaFixture {
  sim::Simulation sim{5};
  net::Network net{sim, std::make_unique<net::FixedDelay>(milliseconds(1))};
  runtime::SimEnv env{sim, net};
  crypto::ClusterKeyring keyring{Bytes(32, 1)};
  TimeAuthority ta{env, 100, keyring};
  crypto::SecureChannel client{1, keyring};

  void send(const proto::Message& m) {
    net.send(1, 100, client.seal(100, proto::encode(m)));
  }
};

TEST(TimeAuthority, RespondsAfterRequestedWait) {
  TaFixture f;
  std::optional<proto::TaResponse> response;
  SimTime arrival = 0;
  f.net.attach(1, [&](const net::Packet& p) {
    const auto opened = f.client.open(p.payload);
    ASSERT_TRUE(opened.has_value());
    const auto msg = proto::decode(opened->plaintext);
    ASSERT_TRUE(msg.has_value());
    response = std::get<proto::TaResponse>(*msg);
    arrival = f.sim.now();
  });

  f.send(proto::TaRequest{.request_id = 9, .wait = seconds(1)});
  f.sim.run();

  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 9u);
  EXPECT_EQ(response->requested_wait, seconds(1));
  // 1 ms up + 1 s wait; timestamp taken at send time.
  EXPECT_EQ(response->ta_time, milliseconds(1) + seconds(1));
  EXPECT_EQ(arrival, milliseconds(2) + seconds(1));
  EXPECT_EQ(f.ta.stats().requests_served, 1u);
}

TEST(TimeAuthority, ZeroWaitAnswersImmediately) {
  TaFixture f;
  SimTime arrival = -1;
  f.net.attach(1, [&](const net::Packet&) { arrival = f.sim.now(); });
  f.send(proto::TaRequest{.request_id = 1, .wait = 0});
  f.sim.run();
  EXPECT_EQ(arrival, milliseconds(2));
}

TEST(TimeAuthority, RejectsExcessiveWait) {
  TaFixture f;
  int responses = 0;
  f.net.attach(1, [&](const net::Packet&) { ++responses; });
  f.send(proto::TaRequest{.request_id = 1, .wait = minutes(10)});
  f.sim.run();
  EXPECT_EQ(responses, 0);
  EXPECT_EQ(f.ta.stats().rejected_waits, 1u);
}

TEST(TimeAuthority, RejectsGarbageAndWrongMessageTypes) {
  TaFixture f;
  int responses = 0;
  f.net.attach(1, [&](const net::Packet&) { ++responses; });

  f.net.send(1, 100, Bytes{1, 2, 3});  // not even a sealed frame
  f.send(proto::PeerTimeRequest{.request_id = 5});  // wrong type
  f.sim.run();
  EXPECT_EQ(responses, 0);
  EXPECT_EQ(f.ta.stats().rejected_frames, 2u);
}

TEST(TimeAuthority, UnauthenticatedSenderRejected) {
  TaFixture f;
  crypto::ClusterKeyring wrong_keyring{Bytes(32, 0xee)};
  crypto::SecureChannel rogue{2, wrong_keyring};
  int responses = 0;
  f.net.attach(2, [&](const net::Packet&) { ++responses; });
  f.net.send(2, 100,
             rogue.seal(100, proto::encode(proto::Message{proto::TaRequest{
                                 .request_id = 1, .wait = 0}})));
  f.sim.run();
  EXPECT_EQ(responses, 0);
  EXPECT_EQ(f.ta.stats().rejected_frames, 1u);
}

TEST(TimeAuthority, ServesManyClientsIndependently) {
  TaFixture f;
  crypto::SecureChannel client2{2, f.keyring};
  int r1 = 0, r2 = 0;
  f.net.attach(1, [&](const net::Packet&) { ++r1; });
  f.net.attach(2, [&](const net::Packet&) { ++r2; });
  f.send(proto::TaRequest{.request_id = 1, .wait = 0});
  f.net.send(2, 100,
             client2.seal(100, proto::encode(proto::Message{proto::TaRequest{
                                   .request_id = 2, .wait = 0}})));
  f.sim.run();
  EXPECT_EQ(r1, 1);
  EXPECT_EQ(r2, 1);
  EXPECT_EQ(f.ta.stats().requests_served, 2u);
}

}  // namespace
}  // namespace triad::ta
