// AES-256 against FIPS 197 / SP 800-38A vectors and AES-256-GCM against
// the classic GCM specification test cases (256-bit key set), plus
// tamper-rejection property tests.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/gcm.h"
#include "util/hex.h"
#include "util/rng.h"

namespace triad::crypto {
namespace {

GcmIv iv_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  GcmIv iv{};
  std::copy(raw.begin(), raw.end(), iv.begin());
  return iv;
}

std::string tag_hex(const GcmTag& tag) {
  return to_hex(BytesView(tag.data(), tag.size()));
}

// SP 800-38A F.1.5: AES-256 ECB encryption.
TEST(Aes256, Sp80038aEcbVectors) {
  const Bytes key = from_hex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Aes256 aes(key);
  const struct {
    const char* pt;
    const char* ct;
  } cases[] = {
      {"6bc1bee22e409f96e93d7e117393172a",
       "f3eed1bdb5d2a03c064b5a7e3db181f8"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51",
       "591ccb10d410ed26dc5ba74a31362870"},
      {"30c81c46a35ce411e5fbc1191a0a52ef",
       "b6ed21b99ca6f4f9f153e7b1beafed1d"},
      {"f69f2445df4f9b17ad2b417be66c3710",
       "23304b7a39f9f3ff067d8d8f9e24ecc7"},
  };
  for (const auto& c : cases) {
    const Bytes pt = from_hex(c.pt);
    Bytes ct(16);
    aes.encrypt_block(pt.data(), ct.data());
    EXPECT_EQ(to_hex(ct), c.ct);
  }
}

// FIPS 197 Appendix C.3 example.
TEST(Aes256, Fips197AppendixC3) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Aes256 aes(key);
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  aes.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes256, InPlaceEncryptionAllowed) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Aes256 aes(key);
  Bytes buf = from_hex("00112233445566778899aabbccddeeff");
  aes.encrypt_block(buf.data(), buf.data());
  EXPECT_EQ(to_hex(buf), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes256, WrongKeySizeThrows) {
  const Bytes short_key(16, 0);
  EXPECT_THROW(Aes256{BytesView(short_key)}, std::invalid_argument);
}

// GCM spec test case 13: zero key, empty plaintext.
TEST(Aes256Gcm, Case13EmptyPlaintext) {
  Aes256Gcm gcm(Bytes(32, 0));
  const auto sealed = gcm.seal(iv_from_hex("000000000000000000000000"), {}, {});
  EXPECT_TRUE(sealed.ciphertext.empty());
  EXPECT_EQ(tag_hex(sealed.tag), "530f8afbc74536b9a963b4f1c4cb738b");
}

// GCM spec test case 14: zero key, 16 zero bytes.
TEST(Aes256Gcm, Case14OneBlock) {
  Aes256Gcm gcm(Bytes(32, 0));
  const auto sealed = gcm.seal(iv_from_hex("000000000000000000000000"),
                               Bytes(16, 0), {});
  EXPECT_EQ(to_hex(sealed.ciphertext), "cea7403d4d606b6e074ec5d3baf39d18");
  EXPECT_EQ(tag_hex(sealed.tag), "d0d1c8a799996bf0265b98b5d48ab919");
}

// GCM spec test case 15: 4 blocks, no AAD.
TEST(Aes256Gcm, Case15FourBlocks) {
  Aes256Gcm gcm(from_hex(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308"));
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  const auto sealed = gcm.seal(iv_from_hex("cafebabefacedbaddecaf888"), pt, {});
  EXPECT_EQ(to_hex(sealed.ciphertext),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad");
  EXPECT_EQ(tag_hex(sealed.tag), "b094dac5d93471bdec1a502270e3cc6c");
}

// GCM spec test case 16: truncated plaintext with AAD.
TEST(Aes256Gcm, Case16WithAad) {
  Aes256Gcm gcm(from_hex(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308"));
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto sealed =
      gcm.seal(iv_from_hex("cafebabefacedbaddecaf888"), pt, aad);
  EXPECT_EQ(to_hex(sealed.ciphertext),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662");
  EXPECT_EQ(tag_hex(sealed.tag), "76fc6ece0f4e1768cddf8853bb2d551b");
}

TEST(Aes256Gcm, OpenRoundTrip) {
  Aes256Gcm gcm(Bytes(32, 7));
  const Bytes pt = {1, 2, 3, 4, 5};
  const Bytes aad = {9, 9};
  const GcmIv iv{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  const auto sealed = gcm.seal(iv, pt, aad);
  const auto opened = gcm.open(iv, sealed.ciphertext, aad, sealed.tag);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aes256Gcm, TamperedCiphertextRejected) {
  Aes256Gcm gcm(Bytes(32, 7));
  const Bytes pt(40, 0xaa);
  const GcmIv iv{};
  auto sealed = gcm.seal(iv, pt, {});
  sealed.ciphertext[17] ^= 0x01;
  EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, {}, sealed.tag).has_value());
}

TEST(Aes256Gcm, TamperedTagRejected) {
  Aes256Gcm gcm(Bytes(32, 7));
  const GcmIv iv{};
  auto sealed = gcm.seal(iv, Bytes{1, 2, 3}, {});
  sealed.tag[0] ^= 0x80;
  EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, {}, sealed.tag).has_value());
}

TEST(Aes256Gcm, TamperedAadRejected) {
  Aes256Gcm gcm(Bytes(32, 7));
  const GcmIv iv{};
  const auto sealed = gcm.seal(iv, Bytes{1, 2, 3}, Bytes{1});
  EXPECT_FALSE(
      gcm.open(iv, sealed.ciphertext, Bytes{2}, sealed.tag).has_value());
}

TEST(Aes256Gcm, WrongIvRejected) {
  Aes256Gcm gcm(Bytes(32, 7));
  const auto sealed = gcm.seal(GcmIv{1}, Bytes{1, 2, 3}, {});
  EXPECT_FALSE(
      gcm.open(GcmIv{2}, sealed.ciphertext, {}, sealed.tag).has_value());
}

TEST(Aes256Gcm, WrongKeyRejected) {
  Aes256Gcm a(Bytes(32, 1));
  Aes256Gcm b(Bytes(32, 2));
  const GcmIv iv{};
  const auto sealed = a.seal(iv, Bytes{1, 2, 3}, {});
  EXPECT_FALSE(b.open(iv, sealed.ciphertext, {}, sealed.tag).has_value());
}

// Property: round trip for many random sizes, keys, and IVs.
class GcmRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmRoundTrip, SealOpenIdentity) {
  Rng rng(GetParam() * 1000 + 17);
  Bytes key(32);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  Aes256Gcm gcm(key);

  Bytes pt(GetParam());
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes aad(GetParam() % 23);
  for (auto& b : aad) b = static_cast<std::uint8_t>(rng.next_u64());
  GcmIv iv;
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next_u64());

  const auto sealed = gcm.seal(iv, pt, aad);
  EXPECT_EQ(sealed.ciphertext.size(), pt.size());
  if (!pt.empty()) {
    EXPECT_NE(sealed.ciphertext, pt);
  }
  const auto opened = gcm.open(iv, sealed.ciphertext, aad, sealed.tag);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 63,
                                           64, 100, 255, 1024, 4096));

}  // namespace
}  // namespace triad::crypto
