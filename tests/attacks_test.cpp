// DelayAttack middlebox: traffic classification and targeting, plus the
// original-policy unit behaviour it exploits.
#include <gtest/gtest.h>

#include "attacks/delay_attack.h"
#include "attacks/ramp_attack.h"
#include "triad/policy.h"

namespace triad::attacks {
namespace {

net::Packet packet(NodeId src, NodeId dst) {
  return net::Packet{src, dst, {}, 0, 0};
}

struct AttackFixture {
  DelayAttackConfig config{.kind = AttackKind::kFPlus,
                           .victim = 3,
                           .ta_address = 100,
                           .added_delay = milliseconds(100),
                           .classification_threshold = milliseconds(500)};
};

TEST(DelayAttack, FPlusDelaysOnlySlowResponses) {
  AttackFixture f;
  DelayAttack attack(f.config);

  // 1 s-sleep round-trip: request at t=0, response at t=1s.
  EXPECT_EQ(attack.on_packet(packet(3, 100), 0).extra_delay, 0);
  const auto slow = attack.on_packet(packet(100, 3), seconds(1));
  EXPECT_EQ(slow.extra_delay, milliseconds(100));
  EXPECT_FALSE(slow.drop);

  // 0 s-sleep round-trip: response 1 ms later -> untouched.
  EXPECT_EQ(attack.on_packet(packet(3, 100), seconds(2)).extra_delay, 0);
  const auto fast = attack.on_packet(packet(100, 3),
                                     seconds(2) + milliseconds(1));
  EXPECT_EQ(fast.extra_delay, 0);
}

TEST(DelayAttack, FMinusDelaysOnlyFastResponses) {
  AttackFixture f;
  f.config.kind = AttackKind::kFMinus;
  DelayAttack attack(f.config);

  attack.on_packet(packet(3, 100), 0);
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(1)).extra_delay, 0);

  attack.on_packet(packet(3, 100), seconds(2));
  EXPECT_EQ(attack
                .on_packet(packet(100, 3), seconds(2) + milliseconds(1))
                .extra_delay,
            milliseconds(100));
}

TEST(DelayAttack, IgnoresOtherTraffic) {
  AttackFixture f;
  DelayAttack attack(f.config);
  // Peer-to-peer and other nodes' TA traffic pass untouched.
  EXPECT_EQ(attack.on_packet(packet(1, 2), 0).extra_delay, 0);
  EXPECT_EQ(attack.on_packet(packet(1, 100), 0).extra_delay, 0);
  EXPECT_EQ(attack.on_packet(packet(100, 1), seconds(1)).extra_delay, 0);
  EXPECT_EQ(attack.stats().requests_observed, 0u);
}

TEST(DelayAttack, UnsolicitedResponseNotClassified) {
  AttackFixture f;
  DelayAttack attack(f.config);
  // Response with no observed request: nothing to infer, no delay.
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(5)).extra_delay, 0);
}

TEST(DelayAttack, DeactivationStopsInterference) {
  AttackFixture f;
  DelayAttack attack(f.config);
  attack.set_active(false);
  attack.on_packet(packet(3, 100), 0);
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(1)).extra_delay, 0);
  attack.set_active(true);
  attack.on_packet(packet(3, 100), seconds(2));
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(3)).extra_delay,
            milliseconds(100));
}

TEST(DelayAttack, StatsCountObservationsAndDelays) {
  AttackFixture f;
  DelayAttack attack(f.config);
  attack.on_packet(packet(3, 100), 0);
  attack.on_packet(packet(100, 3), seconds(1));     // delayed
  attack.on_packet(packet(3, 100), seconds(2));
  attack.on_packet(packet(100, 3), seconds(2) + 1);  // not delayed
  EXPECT_EQ(attack.stats().requests_observed, 2u);
  EXPECT_EQ(attack.stats().responses_observed, 2u);
  EXPECT_EQ(attack.stats().responses_delayed, 1u);
}

TEST(RampAttack, DelayGrowsLinearlyThenSaturates) {
  RampAttackConfig config;
  config.victim = 3;
  config.ta_address = 100;
  config.ramp_per_second = 10e-3;  // +10 ms per second
  config.max_delay = milliseconds(100);
  RampAttack attack(config);

  // First targeted packet starts the ramp.
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(10)).extra_delay, 0);
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(15)).extra_delay,
            milliseconds(50));
  // Saturation after 10 s of ramp.
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(60)).extra_delay,
            milliseconds(100));
}

TEST(RampAttack, OnlyTaToVictimTargeted) {
  RampAttackConfig config;
  config.victim = 3;
  config.ta_address = 100;
  RampAttack attack(config);
  attack.on_packet(packet(100, 3), 0);  // start ramp
  EXPECT_EQ(attack.on_packet(packet(3, 100), seconds(10)).extra_delay, 0);
  EXPECT_EQ(attack.on_packet(packet(100, 1), seconds(10)).extra_delay, 0);
  EXPECT_EQ(attack.on_packet(packet(1, 2), seconds(10)).extra_delay, 0);
}

TEST(RampAttack, DeactivationStopsDelay) {
  RampAttackConfig config;
  config.victim = 3;
  config.ta_address = 100;
  RampAttack attack(config);
  attack.on_packet(packet(100, 3), 0);
  attack.set_active(false);
  EXPECT_EQ(attack.on_packet(packet(100, 3), seconds(50)).extra_delay, 0);
}

TEST(RampAttack, InvalidConfigThrows) {
  EXPECT_THROW(RampAttack({.victim = 5, .ta_address = 5}),
               std::invalid_argument);
  EXPECT_THROW(RampAttack({.victim = 1, .ta_address = 2,
                           .ramp_per_second = 0}),
               std::invalid_argument);
}

TEST(DelayAttack, InvalidConfigThrows) {
  EXPECT_THROW(DelayAttack({.victim = 5, .ta_address = 5}),
               std::invalid_argument);
  EXPECT_THROW(DelayAttack({.victim = 1,
                            .ta_address = 2,
                            .added_delay = -1}),
               std::invalid_argument);
  EXPECT_THROW(DelayAttack({.victim = 1,
                            .ta_address = 2,
                            .classification_threshold = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace triad::attacks

namespace triad {
namespace {

TEST(OriginalPolicy, AdoptsHigherTimestamp) {
  OriginalUntaintPolicy policy;
  const auto d = policy.decide(
      seconds(10), 0, {PeerSample{2, seconds(11), 0, seconds(10)}});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kAdopt);
  EXPECT_EQ(d.adopted_time, seconds(11));
  EXPECT_EQ(d.source, 2u);
}

TEST(OriginalPolicy, KeepsLocalOnLowerTimestamp) {
  OriginalUntaintPolicy policy;
  const auto d = policy.decide(
      seconds(10), 0, {PeerSample{2, seconds(9), 0, seconds(10)}});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kKeepLocal);
}

TEST(OriginalPolicy, EqualTimestampKeepsLocal) {
  OriginalUntaintPolicy policy;
  const auto d = policy.decide(
      seconds(10), 0, {PeerSample{2, seconds(10), 0, seconds(10)}});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kKeepLocal);
}

TEST(OriginalPolicy, NoSamplesAsksTa) {
  OriginalUntaintPolicy policy;
  const auto d = policy.decide(seconds(10), 0, {});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kAskTimeAuthority);
}

TEST(OriginalPolicy, IsFirstResponseMode) {
  EXPECT_EQ(OriginalUntaintPolicy().mode(),
            UntaintPolicy::Mode::kFirstResponse);
  EXPECT_EQ(make_original_policy()->mode(),
            UntaintPolicy::Mode::kFirstResponse);
}

}  // namespace
}  // namespace triad
