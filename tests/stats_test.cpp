// Unit tests for statistics: Welford summaries, outlier dropping,
// quantiles, linear regression, CDF/histogram, time series.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/histogram.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "stats/timeseries.h"
#include "util/rng.h"

namespace triad::stats {
namespace {

TEST(SummaryStats, MeanVarianceMinMax) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.range(), 7.0);
}

TEST(SummaryStats, EmptyThrows) {
  SummaryStats s;
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  s.add(1.0);
  EXPECT_THROW((void)s.variance(), std::logic_error);
}

TEST(SummaryStats, MatchesNaiveComputationOnRandomData) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(100, 15));
  const SummaryStats s = summarize(xs);
  double sum = 0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), ss / static_cast<double>(xs.size() - 1), 1e-6);
}

TEST(DropOutliers, RemovesFarthestFromMedian) {
  // Mirrors the paper's RQ A.1 procedure: drop the 2 worst samples.
  std::vector<double> xs = {100, 101, 99, 100, 100, 42, 180};
  const auto kept = drop_farthest_from_median(xs, 2);
  ASSERT_EQ(kept.size(), 5u);
  for (double v : kept) {
    EXPECT_GE(v, 99);
    EXPECT_LE(v, 101);
  }
}

TEST(DropOutliers, DropAllReturnsEmpty) {
  EXPECT_TRUE(drop_farthest_from_median({1, 2}, 2).empty());
  EXPECT_TRUE(drop_farthest_from_median({1}, 5).empty());
}

TEST(Quantile, ExactValues) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Quantile, BadInputsThrow) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(LinearRegression, ExactLineRecovered) {
  LinearRegression reg;
  for (double x : {0.0, 1.0, 2.0, 3.0}) reg.add(x, 2.5 * x + 7.0);
  const LinearFit f = reg.fit();
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_NEAR(f.intercept, 7.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_EQ(f.n, 4u);
}

TEST(LinearRegression, TwoClusterDesignMatchesTriadCalibration) {
  // Triad regresses over s in {0, 1} second round-trips. With symmetric
  // delay d added to both clusters, the slope is unchanged; delay added
  // only to the s=1 cluster raises the slope by exactly delay/1s.
  const double f_tsc = 2.9e9;  // ticks per second
  LinearRegression clean, attacked;
  for (int i = 0; i < 10; ++i) {
    const double rtt = 200e-6;
    clean.add(0.0, f_tsc * rtt);
    clean.add(1.0, f_tsc * (1.0 + rtt));
    attacked.add(0.0, f_tsc * rtt);
    attacked.add(1.0, f_tsc * (1.1 + rtt));  // +100ms on s=1 (F+ attack)
  }
  EXPECT_NEAR(clean.fit().slope, f_tsc, 1e-3);
  EXPECT_NEAR(attacked.fit().slope, 1.1 * f_tsc, 1e-3);
}

TEST(LinearRegression, InsufficientPointsThrow) {
  LinearRegression reg;
  EXPECT_THROW((void)reg.fit(), std::logic_error);
  reg.add(1.0, 1.0);
  EXPECT_THROW((void)reg.fit(), std::logic_error);
  reg.add(1.0, 2.0);  // same x
  EXPECT_THROW((void)reg.fit(), std::logic_error);
}

TEST(LinearRegression, NoisyFitCloseToTruth) {
  Rng rng(31);
  LinearRegression reg;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    reg.add(x, 3.0 * x + 1.0 + rng.normal(0, 0.5));
  }
  const LinearFit f = reg.fit();
  EXPECT_NEAR(f.slope, 3.0, 0.05);
  EXPECT_NEAR(f.intercept, 1.0, 0.2);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(FitLine, VectorsMustMatch) {
  EXPECT_THROW(fit_line({1, 2}, {1}), std::invalid_argument);
}

TEST(EmpiricalCdf, StepFunctionAndQuantiles) {
  EmpiricalCdf cdf;
  cdf.add_all({10, 532, 1590, 10, 532, 10});
  EXPECT_EQ(cdf.count(), 6u);
  EXPECT_DOUBLE_EQ(cdf.at(9), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(10), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(532), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(cdf.at(2000), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 10);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 1590);
}

TEST(EmpiricalCdf, PointsCollapseDuplicates) {
  EmpiricalCdf cdf;
  cdf.add_all({1, 1, 2});
  const auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 1);
  EXPECT_NEAR(pts[0].cumulative, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(pts[1].value, 2);
  EXPECT_DOUBLE_EQ(pts[1].cumulative, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(4.0);    // bin 2
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Histogram, BadConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TimeSeries, ValueAtStepHold) {
  TimeSeries s("drift");
  s.record(seconds(1), 10.0);
  s.record(seconds(5), 20.0);
  EXPECT_DOUBLE_EQ(s.value_at(seconds(1)), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(seconds(3)), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(seconds(5)), 20.0);
  EXPECT_DOUBLE_EQ(s.value_at(seconds(100)), 20.0);
  EXPECT_THROW((void)s.value_at(0), std::logic_error);
}

TEST(TimeSeries, MinMax) {
  TimeSeries s("x");
  s.record(1, 5.0);
  s.record(2, -3.0);
  s.record(3, 4.0);
  EXPECT_DOUBLE_EQ(s.min_value(), -3.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 5.0);
}

TEST(SeriesSet, CsvHasHeaderAndAlignedRows) {
  SeriesSet set;
  TimeSeries& a = set.add("a");
  TimeSeries& b = set.add("b");
  a.record(seconds(1), 1.0);
  a.record(seconds(3), 3.0);
  b.record(seconds(2), 20.0);
  std::ostringstream out;
  set.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_s,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1,1,"), std::string::npos);    // b empty before t=2
  EXPECT_NE(csv.find("2,1,20"), std::string::npos);  // a holds its value
  EXPECT_NE(csv.find("3,3,20"), std::string::npos);
}

}  // namespace
}  // namespace triad::stats
