// Adversarial-input fuzzing (deterministic, seeded): attacker-controlled
// bytes must never crash, leak, or be accepted.
//
//  * proto::decode on random garbage and on random mutations of valid
//    messages;
//  * SecureChannel::open on garbage, mutated frames, and spliced frames;
//  * end-to-end: a malicious host injecting garbage datagrams at every
//    protocol participant.
#include <gtest/gtest.h>

#include "crypto/channel.h"
#include "exp/scenario.h"
#include "triad/messages.h"
#include "util/rng.h"

namespace triad {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, ProtoDecodeNeverThrowsOnGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes garbage = random_bytes(rng, 64);
    EXPECT_NO_THROW((void)proto::decode(garbage));
  }
}

TEST_P(FuzzSeeds, ProtoDecodeSurvivesMutatedValidMessages) {
  Rng rng(GetParam());
  const proto::Message messages[] = {
      proto::TaRequest{1, seconds(1)},
      proto::TaResponse{2, seconds(99), 0},
      proto::PeerTimeRequest{3},
      proto::PeerTimeResponse{4, seconds(5), milliseconds(1), false},
  };
  for (int i = 0; i < 2000; ++i) {
    Bytes encoded = proto::encode(messages[rng.next_below(4)]);
    // Random mutation: flip bits, truncate, or extend.
    switch (rng.next_below(3)) {
      case 0:
        if (!encoded.empty()) {
          encoded[rng.next_below(encoded.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      case 1:
        encoded.resize(rng.next_below(encoded.size() + 1));
        break;
      case 2:
        encoded.push_back(static_cast<std::uint8_t>(rng.next_u64()));
        break;
    }
    EXPECT_NO_THROW((void)proto::decode(encoded));
  }
}

TEST_P(FuzzSeeds, ChannelOpenRejectsGarbageWithoutThrowing) {
  Rng rng(GetParam());
  crypto::ClusterKeyring keyring{Bytes(32, 0x11)};
  crypto::SecureChannel receiver(2, keyring);
  for (int i = 0; i < 500; ++i) {
    const Bytes garbage = random_bytes(rng, 128);
    std::optional<crypto::SecureChannel::Opened> opened;
    EXPECT_NO_THROW(opened = receiver.open(garbage));
    EXPECT_FALSE(opened.has_value());
  }
}

TEST_P(FuzzSeeds, ChannelOpenRejectsEveryMutatedFrame) {
  Rng rng(GetParam());
  crypto::ClusterKeyring keyring{Bytes(32, 0x11)};
  crypto::SecureChannel sender(1, keyring);
  crypto::SecureChannel receiver(2, keyring);
  for (int i = 0; i < 300; ++i) {
    Bytes frame = sender.seal(2, random_bytes(rng, 48));
    const std::size_t pos = rng.next_below(frame.size());
    const auto mask = static_cast<std::uint8_t>(1u << rng.next_below(8));
    frame[pos] ^= mask;
    std::optional<crypto::SecureChannel::Opened> opened;
    EXPECT_NO_THROW(opened = receiver.open(frame));
    // Flipping the receiver field may merely misroute; everything else
    // must fail authentication. Either way, never accepted as-is by the
    // intended receiver with intact content:
    if (opened) {
      // Only possible if the flipped bit was in the receiver id and the
      // frame became addressed to... no: receiver 2 only accepts frames
      // for 2, and the AAD covers the header. Acceptance is a bug.
      ADD_FAILURE() << "mutated frame accepted at byte " << pos;
    }
  }
}

TEST_P(FuzzSeeds, SplicedFramesRejected) {
  // Cut-and-paste across two valid frames: header of one, body of
  // another.
  Rng rng(GetParam());
  crypto::ClusterKeyring keyring{Bytes(32, 0x11)};
  crypto::SecureChannel sender(1, keyring);
  crypto::SecureChannel receiver(2, keyring);
  for (int i = 0; i < 200; ++i) {
    const Bytes a = sender.seal(2, random_bytes(rng, 32));
    const Bytes b = sender.seal(2, random_bytes(rng, 32));
    const std::size_t cut = rng.next_below(std::min(a.size(), b.size()));
    Bytes spliced(a.begin(), a.begin() + static_cast<long>(cut));
    spliced.insert(spliced.end(), b.begin() + static_cast<long>(cut),
                   b.end());
    if (spliced == a || spliced == b) continue;  // degenerate cut
    EXPECT_FALSE(receiver.open(spliced).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(101, 202, 303));

TEST(EndToEndFuzz, GarbageDatagramStormDoesNotDisturbProtocol) {
  exp::ScenarioConfig cfg;
  cfg.seed = 4711;
  exp::Scenario sc(std::move(cfg));
  sc.start();

  // A malicious host injects garbage at every participant continuously.
  Rng rng(99);
  sim::PeriodicTimer storm(sc.simulation(), milliseconds(3), [&] {
    const NodeId target = static_cast<NodeId>(1 + rng.next_below(4));
    sc.network().send(77, target, random_bytes(rng, 96));
  });
  sc.run_until(minutes(5));

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sc.node(i).state(), NodeState::kOk);
    EXPECT_GT(sc.node(i).stats().bad_frames, 0u);  // storm was seen
    EXPECT_NEAR(sc.node(i).calibrated_frequency_hz(),
                tsc::kPaperTscFrequencyHz, 0.6e6);
  }
  EXPECT_GT(sc.time_authority().stats().rejected_frames, 0u);
}

}  // namespace
}  // namespace triad
