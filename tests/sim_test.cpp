// Unit tests for the discrete-event simulation engine: ordering,
// cancellation, determinism, periodic timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace triad::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_FALSE(s.step());
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(seconds(3), [&] { order.push_back(3); });
  s.schedule_at(seconds(1), [&] { order.push_back(1); });
  s.schedule_at(seconds(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), seconds(3));
}

TEST(Simulation, EqualTimesFireFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(seconds(1), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, HandlerSeesEventTimeAsNow) {
  Simulation s;
  SimTime observed = -1;
  s.schedule_at(milliseconds(250), [&] { observed = s.now(); });
  s.run();
  EXPECT_EQ(observed, milliseconds(250));
}

TEST(Simulation, ScheduleInPastThrows) {
  Simulation s;
  s.schedule_at(seconds(1), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(milliseconds(500), [] {}), std::logic_error);
  EXPECT_THROW(s.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulation, EmptyHandlerThrows) {
  Simulation s;
  EXPECT_THROW(s.schedule_at(1, std::function<void()>{}),
               std::invalid_argument);
}

TEST(Simulation, HandlerCanScheduleAtCurrentTime) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(seconds(1), [&] {
    order.push_back(1);
    s.schedule_at(s.now(), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), seconds(1));
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule_at(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelTwiceIsNoop) {
  Simulation s;
  const EventId id = s.schedule_at(seconds(1), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(EventId{}));
  s.run();
}

TEST(Simulation, CancelFromInsideHandler) {
  Simulation s;
  bool fired = false;
  const EventId later = s.schedule_at(seconds(2), [&] { fired = true; });
  s.schedule_at(seconds(1), [&] { s.cancel(later); });
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilWithCancelledHeadDoesNotOvershoot) {
  // Regression test: a cancelled tombstone at the head of the queue with
  // time <= t must not cause run_until to execute a live event beyond t
  // (which would then drag now() backwards).
  Simulation s;
  const EventId cancelled = s.schedule_at(seconds(1), [] {});
  SimTime fired_at = -1;
  s.schedule_at(seconds(3), [&] { fired_at = s.now(); });
  s.cancel(cancelled);
  s.run_until(seconds(2));
  EXPECT_EQ(fired_at, -1);       // the 3 s event must not have run
  EXPECT_EQ(s.now(), seconds(2));
  s.run();
  EXPECT_EQ(fired_at, seconds(3));
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation s;
  s.run_until(minutes(5));
  EXPECT_EQ(s.now(), minutes(5));
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation s;
  int fired = 0;
  s.schedule_at(seconds(1), [&] { ++fired; });
  s.schedule_at(seconds(2), [&] { ++fired; });
  s.schedule_at(seconds(3), [&] { ++fired; });
  s.run_until(seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), seconds(2));
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, PendingAndExecutedCounts) {
  Simulation s;
  const EventId a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.events_executed(), 1u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulation, PendingEventsExactAfterCancelThenPurge) {
  // Regression: the old implementation derived pending_events() from
  // heap size minus a cancelled-set size; a cancelled entry that had
  // already been purged from the heap was double-counted and the count
  // underflowed (or drifted). Force the purge path: cancel the head,
  // then let run_until() sweep past it.
  Simulation s;
  const EventId head = s.schedule_at(seconds(1), [] {});
  s.schedule_at(seconds(3), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  EXPECT_TRUE(s.cancel(head));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(seconds(2));  // purges the dead head without executing it
  EXPECT_EQ(s.pending_events(), 1u);  // exact: only the 3 s event left
  EXPECT_EQ(s.events_executed(), 0u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulation, RunForAdvancesRelativeToNow) {
  Simulation s;
  int fired = 0;
  s.schedule_at(seconds(1), [&] { ++fired; });
  s.schedule_at(seconds(4), [&] { ++fired; });
  s.run_for(seconds(2));
  EXPECT_EQ(s.now(), seconds(2));
  EXPECT_EQ(fired, 1);
  s.run_for(seconds(2));  // relative to the new now: stops at 4 s
  EXPECT_EQ(s.now(), seconds(4));
  EXPECT_EQ(fired, 2);
  EXPECT_THROW(s.run_for(-seconds(1)), std::logic_error);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation s(123);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 5; ++i) {
      s.schedule_at(seconds(i + 1),
                    [&values, &s] { values.push_back(s.rng().next_u64()); });
    }
    s.run();
    return values;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, FuzzAgainstReferenceModel) {
  // Random schedule/cancel sequences executed both by the event queue
  // and by a naive reference (sorted vector); executed event sets and
  // times must match exactly.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    Simulation sim(seed);
    struct Ref {
      SimTime time;
      int tag;
      bool cancelled = false;
    };
    std::vector<Ref> reference;
    std::vector<EventId> ids;
    std::vector<std::pair<int, SimTime>> executed;

    SimTime horizon = 0;
    for (int op = 0; op < 400; ++op) {
      if (rng.chance(0.7) || ids.empty()) {
        const SimTime at = sim.now() + rng.uniform_int(0, 1000);
        const int tag = static_cast<int>(reference.size());
        ids.push_back(sim.schedule_at(
            at, [tag, &executed, &sim] {
              executed.emplace_back(tag, sim.now());
            }));
        reference.push_back({at, tag});
        horizon = std::max(horizon, at);
      } else {
        const std::size_t pick = rng.next_below(ids.size());
        const bool did = sim.cancel(ids[pick]);
        // Mirror in the reference: cancellable iff not yet executed and
        // not already cancelled.
        Ref& ref = reference[pick];
        const bool expected = !ref.cancelled &&
                              !(ref.time <= sim.now() &&
                                std::any_of(executed.begin(), executed.end(),
                                            [&](const auto& e) {
                                              return e.first == ref.tag;
                                            }));
        EXPECT_EQ(did, expected) << "seed " << seed << " op " << op;
        ref.cancelled = true;
      }
      // Occasionally advance time part-way.
      if (rng.chance(0.2)) {
        sim.run_until(sim.now() + rng.uniform_int(0, 300));
      }
    }
    sim.run_until(horizon + 1);

    // Reference: every non-cancelled event executes exactly once, at its
    // scheduled time, in (time, insertion) order.
    std::vector<std::pair<int, SimTime>> expected;
    std::vector<std::size_t> order(reference.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return reference[a].time < reference[b].time;
                     });
    // Events that were cancelled *after* execution still count; replicate
    // by checking what actually executed instead of reconstructing
    // cancellation timing — the invariant checked here is that executed
    // events are a subset of scheduled ones, at the right time, in a
    // time-sorted order.
    SimTime prev = -1;
    std::set<int> seen;
    for (const auto& [tag, at] : executed) {
      EXPECT_TRUE(seen.insert(tag).second) << "duplicate execution";
      const auto& ref = reference[static_cast<std::size_t>(tag)];
      EXPECT_EQ(at, ref.time);
      EXPECT_GE(at, prev);
      prev = at;
    }
  }
}

TEST(PeriodicTimer, FiresAtFixedPeriod) {
  Simulation s;
  std::vector<SimTime> times;
  PeriodicTimer timer(s, seconds(10), [&] { times.push_back(s.now()); });
  s.run_until(seconds(35));
  EXPECT_EQ(times, (std::vector<SimTime>{seconds(10), seconds(20),
                                         seconds(30)}));
}

TEST(PeriodicTimer, CustomFirstFiring) {
  Simulation s;
  std::vector<SimTime> times;
  PeriodicTimer timer(s, seconds(1), seconds(10),
                      [&] { times.push_back(s.now()); });
  s.run_until(seconds(25));
  EXPECT_EQ(times, (std::vector<SimTime>{seconds(1), seconds(11),
                                         seconds(21)}));
}

TEST(PeriodicTimer, StopPreventsFurtherFirings) {
  Simulation s;
  int count = 0;
  PeriodicTimer timer(s, seconds(1), [&] { ++count; });
  s.run_until(seconds(3));
  timer.stop();
  s.run_until(seconds(10));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, DestructionCancelsPending) {
  Simulation s;
  int count = 0;
  {
    PeriodicTimer timer(s, seconds(1), [&] { ++count; });
    s.run_until(seconds(2));
  }
  s.run_until(seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, CanStopItselfFromCallback) {
  Simulation s;
  int count = 0;
  PeriodicTimer* self = nullptr;
  PeriodicTimer timer(s, seconds(1), [&] {
    if (++count == 2) self->stop();
  });
  self = &timer;
  s.run_until(seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, NonPositivePeriodThrows) {
  Simulation s;
  EXPECT_THROW(PeriodicTimer(s, 0, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace triad::sim
