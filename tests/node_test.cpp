// TriadNode protocol behaviour: calibration, taint/untaint, peer policy,
// TA fallback, monotonic serving, availability accounting, and INC-based
// manipulation detection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/channel.h"
#include "net/network.h"
#include "runtime/cluster_harness.h"
#include "sim/simulation.h"
#include "ta/time_authority.h"
#include "triad/node.h"

namespace triad {
namespace {

constexpr NodeId kTa = 100;

struct Cluster {
  explicit Cluster(std::size_t n, Duration net_delay = microseconds(200),
                   TriadConfig base = {})
      : harness(make_config(n, net_delay)) {
    ta = &harness.make_time_authority();
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(&harness.add_node(base));
    }
    sim = &harness.simulation();
    net = &harness.network();
    keyring = &harness.keyring();
  }

  static runtime::ClusterConfig make_config(std::size_t n,
                                            Duration net_delay) {
    runtime::ClusterConfig config;
    config.seed = 1234;
    config.node_count = n;
    config.ta_address = kTa;
    config.delay = std::make_unique<net::FixedDelay>(net_delay);
    config.master_secret = Bytes(32, 9);
    return config;
  }

  void start_all() { harness.start(); }

  runtime::ClusterHarness harness;
  ta::TimeAuthority* ta;
  std::vector<TriadNode*> nodes;
  sim::Simulation* sim;
  net::Network* net;
  const crypto::ClusterKeyring* keyring;
};

TEST(TriadNode, StartsInFullCalibAndReachesOk) {
  Cluster c(1);
  c.start_all();
  EXPECT_EQ(c.nodes[0]->state(), NodeState::kFullCalib);
  EXPECT_FALSE(c.nodes[0]->available());
  c.sim->run_until(seconds(30));
  EXPECT_EQ(c.nodes[0]->state(), NodeState::kOk);
  EXPECT_TRUE(c.nodes[0]->available());
  EXPECT_EQ(c.nodes[0]->stats().full_calibrations, 1u);
}

TEST(TriadNode, CalibratedFrequencyCloseToTruthWithSymmetricDelays) {
  Cluster c(1);  // fixed delay: zero jitter -> near-exact slope
  c.start_all();
  c.sim->run_until(seconds(30));
  EXPECT_NEAR(c.nodes[0]->calibrated_frequency_hz(),
              tsc::kPaperTscFrequencyHz, 1000.0);  // within ~0.3 ppm
}

TEST(TriadNode, ClockTracksReferenceAfterCalibration) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(seconds(30));
  // One-way delay offset: the node's clock is the TA stamp, ~200 us old.
  const SimTime drift = c.nodes[0]->current_time() - c.sim->now();
  EXPECT_LT(std::abs(drift - (-microseconds(200))), microseconds(100));
  c.sim->run_until(minutes(5));
  const SimTime later = c.nodes[0]->current_time() - c.sim->now();
  EXPECT_LT(std::abs(later), milliseconds(1));  // sub-ppm frequency error
}

TEST(TriadNode, ServeTimestampUnavailableUntilCalibrated) {
  Cluster c(1);
  c.start_all();
  EXPECT_FALSE(c.nodes[0]->serve_timestamp().has_value());
  EXPECT_EQ(c.nodes[0]->stats().serve_unavailable, 1u);
  c.sim->run_until(seconds(30));
  EXPECT_TRUE(c.nodes[0]->serve_timestamp().has_value());
}

TEST(TriadNode, ServedTimestampsStrictlyMonotonic) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(seconds(30));
  SimTime prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto ts = c.nodes[0]->serve_timestamp();
    ASSERT_TRUE(ts.has_value());
    EXPECT_GT(*ts, prev);
    prev = *ts;
  }
  EXPECT_EQ(c.nodes[0]->stats().timestamps_served, 1000u);
}

TEST(TriadNode, MonotonicAcrossBackwardAdoption) {
  // Even if the clock is stepped backwards by an adoption, serving must
  // never go back.
  Cluster c(2);
  c.start_all();
  c.sim->run_until(seconds(30));
  auto& node = *c.nodes[0];
  const auto before = node.serve_timestamp();
  ASSERT_TRUE(before.has_value());
  // AEX -> peer round -> the peer's clock is behind (keep-local path).
  node.monitoring_thread().deliver_aex();
  c.sim->run_for(milliseconds(50));
  const auto after = node.serve_timestamp();
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(*after, *before);
}

TEST(TriadNode, AexTaintsAndPeerUntaints) {
  Cluster c(2);
  c.start_all();
  c.sim->run_until(seconds(30));
  auto& node = *c.nodes[0];
  ASSERT_EQ(node.state(), NodeState::kOk);

  node.monitoring_thread().deliver_aex();
  EXPECT_EQ(node.state(), NodeState::kTainted);
  EXPECT_FALSE(node.serve_timestamp().has_value());

  c.sim->run_for(milliseconds(10));
  EXPECT_EQ(node.state(), NodeState::kOk);
  EXPECT_EQ(node.stats().peer_rounds, 1u);
  // Fixed equal hardware -> clocks nearly equal; either adopt or keep.
  EXPECT_EQ(node.stats().peer_adoptions + node.stats().kept_local, 1u);
  EXPECT_EQ(node.stats().ta_fallbacks, 0u);
}

TEST(TriadNode, AllPeersTaintedFallsBackToTa) {
  Cluster c(2);
  c.start_all();
  c.sim->run_until(seconds(30));
  const auto refs_before = c.nodes[0]->stats().ta_time_references;

  // Taint both nodes at the same instant (correlated machine AEX).
  c.nodes[0]->monitoring_thread().deliver_aex();
  c.nodes[1]->monitoring_thread().deliver_aex();
  c.sim->run_for(seconds(1));

  EXPECT_EQ(c.nodes[0]->state(), NodeState::kOk);
  EXPECT_EQ(c.nodes[1]->state(), NodeState::kOk);
  EXPECT_GT(c.nodes[0]->stats().ta_fallbacks, 0u);
  EXPECT_GT(c.nodes[0]->stats().ta_time_references, refs_before);
}

TEST(TriadNode, SoloNodeGoesStraightToTaOnAex) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(seconds(30));
  c.nodes[0]->monitoring_thread().deliver_aex();
  EXPECT_EQ(c.nodes[0]->state(), NodeState::kRefCalib);
  c.sim->run_for(seconds(1));
  EXPECT_EQ(c.nodes[0]->state(), NodeState::kOk);
  EXPECT_EQ(c.nodes[0]->stats().ta_fallbacks, 1u);
}

TEST(TriadNode, MaxPolicyFollowsFasterPeerClock) {
  Cluster c(2);
  c.start_all();
  c.sim->run_until(seconds(30));
  // Step node 2's clock 1 s into the future via its TSC (hypervisor
  // offset large enough to dominate); its INC monitor would catch this,
  // but node 1's adoption logic is what we exercise here.
  auto& fast = *c.nodes[1];
  fast.tsc().hv_add_offset(static_cast<std::int64_t>(
      tsc::kPaperTscFrequencyHz));  // +1 s worth of ticks

  auto& honest = *c.nodes[0];
  const SimTime before = honest.current_time();
  honest.monitoring_thread().deliver_aex();
  c.sim->run_for(milliseconds(10));

  EXPECT_EQ(honest.state(), NodeState::kOk);
  EXPECT_EQ(honest.stats().peer_adoptions, 1u);
  EXPECT_GT(honest.current_time(), before + milliseconds(900));
}

TEST(TriadNode, IncMonitorTriggersFullRecalibrationOnTscScale) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(seconds(30));
  auto& node = *c.nodes[0];
  ASSERT_EQ(node.stats().full_calibrations, 1u);

  node.tsc().hv_set_scale(1.01);  // 1% speedup: far beyond noise
  node.monitoring_thread().deliver_aex();
  EXPECT_EQ(node.stats().inc_check_failures, 1u);
  EXPECT_EQ(node.state(), NodeState::kFullCalib);
  EXPECT_EQ(node.stats().full_calibrations, 2u);

  c.sim->run_for(seconds(30));
  EXPECT_EQ(node.state(), NodeState::kOk);
  // Recalibrated against the scaled TSC: slope ≈ 1.01 * F.
  EXPECT_NEAR(node.calibrated_frequency_hz(),
              1.01 * tsc::kPaperTscFrequencyHz, 5e4);
}

TEST(TriadNode, IncMonitorDetectsTscOffsetJumpAtNextAex) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(seconds(30));
  auto& node = *c.nodes[0];
  ASSERT_EQ(node.stats().full_calibrations, 1u);

  c.sim->run_until(seconds(40));
  // Hypervisor jumps the TSC 1 s into the future between AEXs.
  node.tsc().hv_add_offset(static_cast<std::int64_t>(
      tsc::kPaperTscFrequencyHz));
  c.sim->run_until(seconds(41));
  node.monitoring_thread().deliver_aex();
  EXPECT_EQ(node.stats().inc_check_failures, 1u);
  EXPECT_EQ(node.stats().full_calibrations, 2u);
}

TEST(TriadNode, CalibrationSamplesRejectedWhenAexHitsMidRoundTrip) {
  TriadConfig base;
  base.calib_pairs = 4;
  Cluster c(1, microseconds(200), base);
  c.start_all();
  // Fire AEXs every 400 ms during calibration: every 1 s probe gets hit.
  auto& thread = c.nodes[0]->monitoring_thread();
  for (int i = 1; i <= 50; ++i) {
    c.sim->schedule_at(milliseconds(400) * i, [&] { thread.deliver_aex(); });
  }
  c.sim->run_until(seconds(60));
  EXPECT_GT(c.nodes[0]->stats().calib_samples_rejected, 0u);
  EXPECT_EQ(c.nodes[0]->state(), NodeState::kOk);  // eventually completes
}

TEST(TriadNode, AvailabilityAccountsUnavailableStates) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(minutes(10));
  const double availability = c.nodes[0]->availability();
  EXPECT_GT(availability, 0.97);  // paper: > 98% incl. initial calibration
  EXPECT_LT(availability, 1.0);   // initial calibration costs something
  const auto durations = c.nodes[0]->state_durations();
  EXPECT_GT(durations[static_cast<std::size_t>(NodeState::kFullCalib)], 0);
  const Duration total =
      durations[0] + durations[1] + durations[2] + durations[3];
  EXPECT_EQ(total, minutes(10));
}

TEST(TriadNode, ErrorBoundGrowsBetweenSyncsAndResets) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(seconds(30));
  const Duration e0 = c.nodes[0]->current_error_bound();
  c.sim->run_for(minutes(5));
  const Duration e1 = c.nodes[0]->current_error_bound();
  EXPECT_GT(e1, e0);
  // TA refresh resets the bound.
  c.nodes[0]->monitoring_thread().deliver_aex();
  c.sim->run_for(seconds(1));
  EXPECT_LT(c.nodes[0]->current_error_bound(), e1);
}

TEST(TriadNode, TaTimeoutTriggersResend) {
  Cluster c(1);
  // Drop everything to/from the TA for the first 10 s.
  class Blackhole final : public net::Middlebox {
   public:
    Action on_packet(const net::Packet&, SimTime now) override {
      return {.extra_delay = 0, .drop = now < seconds(10)};
    }
  } blackhole;
  c.net->add_middlebox(&blackhole);
  c.start_all();
  c.sim->run_until(seconds(60));
  EXPECT_EQ(c.nodes[0]->state(), NodeState::kOk);  // recovered via resend
  c.net->remove_middlebox(&blackhole);
}

TEST(TriadNode, HooksFireOnStateChangesAndAdoptions) {
  Cluster c(2);
  int state_changes = 0;
  int adoptions = 0;
  NodeHooks hooks;
  hooks.on_state_change = [&](NodeState, NodeState) { ++state_changes; };
  hooks.on_adoption = [&](SimTime, SimTime, NodeId source) {
    ++adoptions;
    EXPECT_EQ(source, kTa);  // initial calibration adopts from the TA
  };
  c.nodes[0]->set_hooks(std::move(hooks));
  c.start_all();
  c.sim->run_until(seconds(30));
  EXPECT_GE(state_changes, 1);  // FullCalib -> Ok
  EXPECT_EQ(adoptions, 1);
}

TEST(TriadNode, InvalidConfigRejected) {
  Cluster c(1);
  TriadConfig bad;
  bad.id = 50;
  bad.ta_address = kTa;
  bad.calib_pairs = 0;
  EXPECT_THROW(TriadNode(c.harness.env(), *c.keyring, bad,
                         TriadNode::HardwareParams{}),
               std::invalid_argument);
  bad.calib_pairs = 4;
  bad.calib_wait_high = bad.calib_wait_low;
  EXPECT_THROW(TriadNode(c.harness.env(), *c.keyring, bad,
                         TriadNode::HardwareParams{}),
               std::invalid_argument);
}

TEST(TriadNode, StartTwiceThrows) {
  Cluster c(1);
  c.start_all();
  EXPECT_THROW(c.nodes[0]->start(), std::logic_error);
}

TEST(TriadNode, TrueTimeIntervalContainsReference) {
  Cluster c(1);
  c.start_all();
  c.sim->run_until(seconds(30));
  auto& node = *c.nodes[0];
  for (int i = 0; i < 60; ++i) {
    c.sim->run_for(seconds(10));
    const auto interval = node.now_interval();
    ASSERT_TRUE(interval.has_value());
    // The true reference time (sim.now) lies within the bounds: the
    // node's real drift (sub-ppm with fixed delays) is far below the
    // assumed 500 ppm bound.
    EXPECT_LE(interval->earliest, c.sim->now());
    EXPECT_GE(interval->latest, c.sim->now());
    EXPECT_LT(interval->latest - interval->earliest, seconds(2));
  }
}

TEST(TriadNode, TrueTimeIntervalEndpointsMonotonic) {
  Cluster c(2);
  c.start_all();
  c.sim->run_until(seconds(30));
  auto& node = *c.nodes[0];
  auto prev = node.now_interval();
  ASSERT_TRUE(prev.has_value());
  for (int i = 0; i < 200; ++i) {
    c.sim->run_for(milliseconds(200));
    if (i == 50) node.monitoring_thread().deliver_aex();  // resync jolt
    const auto interval = node.now_interval();
    if (!interval) continue;  // briefly tainted
    EXPECT_GE(interval->earliest, prev->earliest);
    EXPECT_GE(interval->latest, prev->latest);
    prev = interval;
  }
}

TEST(TriadNode, TrueTimeIntervalUnavailableWhileTainted) {
  Cluster c(2);
  c.start_all();
  c.sim->run_until(seconds(30));
  c.nodes[0]->monitoring_thread().deliver_aex();
  EXPECT_FALSE(c.nodes[0]->now_interval().has_value());
}

TEST(TriadNode, ProactiveDeadlineChecksKeepNodeAvailable) {
  TriadConfig base;
  base.refresh_deadline = seconds(5);
  Cluster c(3, microseconds(200), base);
  c.start_all();
  c.sim->run_until(minutes(5));
  auto& node = *c.nodes[0];
  // Deadline checks fired regularly...
  EXPECT_GT(node.stats().proactive_checks, 40u);
  // ...without making the node unavailable (no AEXs in this fixture, so
  // only the initial calibration costs availability).
  EXPECT_GT(node.availability(), 0.95);
  EXPECT_EQ(node.state(), NodeState::kOk);
}

TEST(TriadNode, PeerAnswersCarryErrorBounds) {
  // A peer's PeerTimeResponse includes its self-reported error bound,
  // which the receiving policy sees in its samples.
  Cluster c(2);
  c.start_all();
  c.sim->run_until(seconds(30));
  // Make node 2's bound large by aging it: no sync for 10 minutes.
  c.sim->run_for(minutes(10));
  const Duration bound = c.nodes[1]->current_error_bound();
  EXPECT_GT(bound, milliseconds(100));  // 500 ppm * 600 s = 300 ms
  EXPECT_LT(bound, milliseconds(600));
}

TEST(TriadNode, LongWindowCalibrationConvergesToTrueFrequency) {
  TriadConfig base;
  base.long_window_calibration = true;
  base.long_window_min = seconds(60);
  Cluster c(1, microseconds(200), base);
  c.start_all();
  c.sim->run_until(seconds(30));

  // Corrupt the calibrated frequency as an F-style attack would, then
  // force TA reference refreshes a long window apart.
  auto& node = *c.nodes[0];
  ASSERT_EQ(node.state(), NodeState::kOk);

  node.monitoring_thread().deliver_aex();  // -> TA (solo node)
  c.sim->run_for(seconds(2));
  c.sim->run_for(seconds(120));
  node.monitoring_thread().deliver_aex();  // second TA anchor, 120 s later
  c.sim->run_for(seconds(2));

  EXPECT_NEAR(node.calibrated_frequency_hz(), tsc::kPaperTscFrequencyHz,
              0.3e4);  // ~1 ppm of 2.9 GHz ≈ 2.9 kHz
}

}  // namespace
}  // namespace triad
