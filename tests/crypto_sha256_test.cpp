// SHA-256 / HMAC / HKDF against FIPS 180-4, RFC 4231, and RFC 5869
// published test vectors.
#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/hex.h"

namespace triad::crypto {
namespace {

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string digest_hex(const Sha256Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256(ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256(ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = ascii("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x5a);
    Sha256 incremental;
    for (std::size_t i = 0; i < len; ++i) {
      incremental.update(BytesView(&msg[i], 1));
    }
    EXPECT_EQ(incremental.finish(), sha256(msg)) << "len " << len;
  }
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update(ascii("x"));
  (void)h.finish();
  EXPECT_THROW(h.update(ascii("y")), std::logic_error);
  EXPECT_THROW(h.finish(), std::logic_error);
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, ascii("Hi There"));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: short key "Jefe".
TEST(HmacSha256, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(ascii("Jefe"), ascii("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto mac = hmac_sha256(key, data);
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key larger than one block (131 bytes of 0xaa).
TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, ascii("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(BytesView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 5869 test case 1 (SHA-256).
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Sha256Digest prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(BytesView(prk.data(), prk.size())),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3: empty salt and info.
TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, OutputLengthLimit) {
  const Bytes ikm(10, 1);
  EXPECT_NO_THROW(hkdf({}, ikm, {}, 255 * 32));
  EXPECT_THROW(hkdf({}, ikm, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, DistinctInfoYieldsDistinctKeys) {
  const Bytes ikm(32, 0x42);
  const Bytes a = hkdf({}, ikm, ascii("key-a"), 32);
  const Bytes b = hkdf({}, ikm, ascii("key-b"), 32);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace triad::crypto
