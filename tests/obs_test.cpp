// Observability layer: metrics registry, trace ring, exporters, and the
// end-to-end determinism guarantee (seeded runs produce byte-identical
// Prometheus text and JSONL traces).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace triad::obs {
namespace {

// --- metrics registry -----------------------------------------------------

TEST(Registry, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter c = reg.counter("c_total", {{"node", "1"}});
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.value("c_total", {{"node", "1"}}), 5.0);

  Gauge g = reg.gauge("g");
  g.set(2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);

  Histogram h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);   // bucket le=1
  h.observe(5.0);   // bucket le=10
  h.observe(100.0); // +Inf bucket
  const HistogramCell* cell = h.cell();
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count, 3u);
  EXPECT_EQ(cell->counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(cell->sum, 105.5);
}

TEST(Registry, DefaultHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(1.0);
  h.observe(1.0);
  EXPECT_FALSE(c.attached());
  EXPECT_FALSE(g.attached());
  EXPECT_FALSE(h.attached());
  // make_* helpers return no-op handles for a null registry.
  EXPECT_FALSE(make_counter(nullptr, "x").attached());
  EXPECT_FALSE(make_gauge(nullptr, "x").attached());
  EXPECT_FALSE(make_histogram(nullptr, "x", {1.0}).attached());
}

TEST(Registry, SameNameAndLabelsResolveToSameCell) {
  Registry reg;
  Counter a = reg.counter("c_total", {{"node", "1"}});
  Counter b = reg.counter("c_total", {{"node", "1"}});
  Counter other = reg.counter("c_total", {{"node", "2"}});
  a.inc(3);
  b.inc(2);
  other.inc(10);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.value("c_total", {{"node", "1"}}), 5.0);
  EXPECT_EQ(reg.total("c_total"), 15.0);
}

TEST(Registry, KindAndDuplicateConflictsThrow) {
  Registry reg;
  (void)reg.counter("m");
  EXPECT_THROW((void)reg.gauge("m"), std::logic_error);  // kind mismatch
  EXPECT_THROW(reg.counter_fn(&reg, "m", {}, [] { return 0.0; }),
               std::logic_error);  // direct cell already holds the series
  int owner = 0;
  reg.gauge_fn(&owner, "cb", {}, [] { return 1.0; });
  EXPECT_THROW(reg.gauge_fn(&owner, "cb", {}, [] { return 2.0; }),
               std::logic_error);  // duplicate callback series
  EXPECT_THROW((void)reg.histogram("hb", {}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("hb", {2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, UnregisterDropsOnlyTheOwnersSeries) {
  Registry reg;
  int owner_a = 0, owner_b = 0;
  reg.counter_fn(&owner_a, "cb_total", {{"node", "1"}}, [] { return 1.0; });
  reg.counter_fn(&owner_b, "cb_total", {{"node", "2"}}, [] { return 2.0; });
  EXPECT_EQ(reg.series_count(), 2u);
  reg.unregister(&owner_a);
  EXPECT_EQ(reg.series_count(), 1u);
  EXPECT_FALSE(reg.value("cb_total", {{"node", "1"}}).has_value());
  EXPECT_EQ(reg.value("cb_total", {{"node", "2"}}), 2.0);
}

TEST(Registry, HelpMayBeSetBeforeOrAfterRegistration) {
  // Components declare help next to registration in either order; both
  // must end up on the # HELP line.
  Registry reg;
  reg.set_help("early_total", "declared before the series");
  (void)reg.counter("early_total");
  (void)reg.counter("late_total");
  reg.set_help("late_total", "declared after the series");
  std::ostringstream out;
  reg.write_prometheus(out);
  EXPECT_NE(out.str().find("# HELP early_total declared before the series"),
            std::string::npos);
  EXPECT_NE(out.str().find("# HELP late_total declared after the series"),
            std::string::npos);
}

TEST(Registry, SnapshotKeepsRegistrationOrder) {
  Registry reg;
  (void)reg.counter("z_total");
  (void)reg.gauge("a_gauge");
  (void)reg.counter("m_total");
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "z_total");  // registration order, not sorted
  EXPECT_EQ(snaps[1].name, "a_gauge");
  EXPECT_EQ(snaps[2].name, "m_total");
}

TEST(Registry, PrometheusTextFormat) {
  Registry reg;
  reg.set_help("req_total", "requests");
  reg.counter("req_total", {{"node", "1"}}).inc(7);
  Histogram h = reg.histogram("lat_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(2.0);
  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{node=\"1\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 2.55\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
}

TEST(Registry, CsvSnapshotFormat) {
  Registry reg;
  reg.counter("c_total", {{"node", "1"}, {"kind", "x"}}).inc(2);
  std::ostringstream out;
  reg.write_csv(out);
  EXPECT_NE(out.str().find("metric,kind,labels,value,count\n"),
            std::string::npos);
  EXPECT_NE(out.str().find("c_total,counter,node=1;kind=x,2,0\n"),
            std::string::npos);
}

// --- trace ring -----------------------------------------------------------

TraceEvent make_event(std::int64_t at, TraceEventType type) {
  TraceEvent event;
  event.at = at;
  event.type = type;
  return event;
}

TEST(RingTraceSink, BoundedAndCountsDrops) {
  RingTraceSink ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.emit(make_event(i, TraceEventType::kAex));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  // Oldest-to-newest visit of the retained (most recent) events.
  std::vector<std::int64_t> order;
  ring.for_each([&order](const TraceEvent& e) { order.push_back(e.at); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{2, 3, 4}));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TeeTraceSink, FansOutToEverySink) {
  RingTraceSink a(8), b(8);
  TeeTraceSink tee;
  tee.add(&a);
  tee.add(&b);
  tee.emit(make_event(1, TraceEventType::kAex));
  tee.remove(&b);
  tee.emit(make_event(2, TraceEventType::kAex));
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(b.total(), 1u);
}

// --- JSONL export ---------------------------------------------------------

TEST(TraceExport, JsonLineRendersTypedFields) {
  TraceEvent event;
  event.at = 1500000000;
  event.type = TraceEventType::kAdoption;
  event.node = 3;
  event.peer = 4;
  event.a = 1499998000;
  event.b = 1500002000;
  std::ostringstream out;
  write_json_line(event, out);
  EXPECT_EQ(out.str(),
            "{\"t\":1500000000,\"type\":\"adoption\",\"node\":3,"
            "\"source\":4,\"before\":1499998000,\"adopted\":1500002000,"
            "\"step_ns\":4000}");
}

TEST(TraceExport, JsonlWritesOneLinePerEvent) {
  RingTraceSink ring(4);
  ring.emit(make_event(1, TraceEventType::kAex));
  ring.emit(make_event(2, TraceEventType::kClockStep));
  std::ostringstream out;
  write_jsonl(ring, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"t\":1,\"type\":\"aex\""), std::string::npos);
  EXPECT_NE(text.find("{\"t\":2,\"type\":\"clock_step\""), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

// --- end-to-end determinism and attack reconstruction ---------------------

exp::ScenarioConfig observed_config(std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.enable_metrics = true;
  cfg.trace_capacity = 1 << 16;
  return cfg;
}

struct ObservedRun {
  std::string prometheus;
  std::string jsonl;
};

ObservedRun run_observed(std::uint64_t seed, bool attack) {
  exp::Scenario sc(observed_config(seed));
  if (attack) {
    attacks::DelayAttackConfig config;
    config.kind = attacks::AttackKind::kFMinus;
    config.victim = sc.node_address(2);
    config.ta_address = sc.ta_address();
    config.added_delay = milliseconds(100);
    sc.add_delay_attack(config);
  }
  sc.start();
  sc.run_until(minutes(3));
  ObservedRun run;
  std::ostringstream prom, jsonl;
  sc.metrics()->write_prometheus(prom);
  write_jsonl(*sc.trace(), jsonl);
  run.prometheus = prom.str();
  run.jsonl = jsonl.str();
  return run;
}

TEST(ObsDeterminism, SeededRunsProduceByteIdenticalExports) {
  const ObservedRun first = run_observed(77, /*attack=*/false);
  const ObservedRun second = run_observed(77, /*attack=*/false);
  EXPECT_EQ(first.prometheus, second.prometheus);
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_FALSE(first.jsonl.empty());
  EXPECT_NE(first.prometheus.find("triad_node_adoptions_total"),
            std::string::npos);
  const ObservedRun other = run_observed(78, /*attack=*/false);
  EXPECT_NE(first.jsonl, other.jsonl);
}

TEST(ObsDeterminism, FMinusTraceReconstructsTheAttackChain) {
  // The F- middlebox inflates the victim's calibration; the trace must
  // let a reader reconstruct the chain: taint (state change), peer
  // query, and an adoption of external evidence.
  const ObservedRun run = run_observed(9, /*attack=*/true);
  EXPECT_NE(run.jsonl.find("\"type\":\"state_change\",\"node\":3"),
            std::string::npos);
  EXPECT_NE(run.jsonl.find("\"type\":\"peer_query\",\"node\":3"),
            std::string::npos);
  EXPECT_NE(run.jsonl.find("\"type\":\"adoption\",\"node\":3"),
            std::string::npos);
  // And the metrics agree that the victim's adoption counter exists.
  EXPECT_NE(run.prometheus.find("triad_node_adoptions_total{node=\"3\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace triad::obs
