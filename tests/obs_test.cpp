// Observability layer: metrics registry, trace ring, exporters, and the
// end-to-end determinism guarantee (seeded runs produce byte-identical
// Prometheus text and JSONL traces).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "obs/detect.h"
#include "obs/export.h"
#include "obs/forensic.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace triad::obs {
namespace {

// --- metrics registry -----------------------------------------------------

TEST(Registry, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter c = reg.counter("c_total", {{"node", "1"}});
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.value("c_total", {{"node", "1"}}), 5.0);

  Gauge g = reg.gauge("g");
  g.set(2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);

  Histogram h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);   // bucket le=1
  h.observe(5.0);   // bucket le=10
  h.observe(100.0); // +Inf bucket
  const HistogramCell* cell = h.cell();
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count, 3u);
  EXPECT_EQ(cell->counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(cell->sum, 105.5);
}

TEST(Registry, DefaultHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(1.0);
  h.observe(1.0);
  EXPECT_FALSE(c.attached());
  EXPECT_FALSE(g.attached());
  EXPECT_FALSE(h.attached());
  // make_* helpers return no-op handles for a null registry.
  EXPECT_FALSE(make_counter(nullptr, "x").attached());
  EXPECT_FALSE(make_gauge(nullptr, "x").attached());
  EXPECT_FALSE(make_histogram(nullptr, "x", {1.0}).attached());
}

TEST(Registry, SameNameAndLabelsResolveToSameCell) {
  Registry reg;
  Counter a = reg.counter("c_total", {{"node", "1"}});
  Counter b = reg.counter("c_total", {{"node", "1"}});
  Counter other = reg.counter("c_total", {{"node", "2"}});
  a.inc(3);
  b.inc(2);
  other.inc(10);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.value("c_total", {{"node", "1"}}), 5.0);
  EXPECT_EQ(reg.total("c_total"), 15.0);
}

TEST(Registry, KindAndDuplicateConflictsThrow) {
  Registry reg;
  (void)reg.counter("m");
  EXPECT_THROW((void)reg.gauge("m"), std::logic_error);  // kind mismatch
  EXPECT_THROW(reg.counter_fn(&reg, "m", {}, [] { return 0.0; }),
               std::logic_error);  // direct cell already holds the series
  int owner = 0;
  reg.gauge_fn(&owner, "cb", {}, [] { return 1.0; });
  EXPECT_THROW(reg.gauge_fn(&owner, "cb", {}, [] { return 2.0; }),
               std::logic_error);  // duplicate callback series
  EXPECT_THROW((void)reg.histogram("hb", {}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("hb", {2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, UnregisterDropsOnlyTheOwnersSeries) {
  Registry reg;
  int owner_a = 0, owner_b = 0;
  reg.counter_fn(&owner_a, "cb_total", {{"node", "1"}}, [] { return 1.0; });
  reg.counter_fn(&owner_b, "cb_total", {{"node", "2"}}, [] { return 2.0; });
  EXPECT_EQ(reg.series_count(), 2u);
  reg.unregister(&owner_a);
  EXPECT_EQ(reg.series_count(), 1u);
  EXPECT_FALSE(reg.value("cb_total", {{"node", "1"}}).has_value());
  EXPECT_EQ(reg.value("cb_total", {{"node", "2"}}), 2.0);
}

TEST(Registry, HelpMayBeSetBeforeOrAfterRegistration) {
  // Components declare help next to registration in either order; both
  // must end up on the # HELP line.
  Registry reg;
  reg.set_help("early_total", "declared before the series");
  (void)reg.counter("early_total");
  (void)reg.counter("late_total");
  reg.set_help("late_total", "declared after the series");
  std::ostringstream out;
  reg.write_prometheus(out);
  EXPECT_NE(out.str().find("# HELP early_total declared before the series"),
            std::string::npos);
  EXPECT_NE(out.str().find("# HELP late_total declared after the series"),
            std::string::npos);
}

TEST(Registry, SnapshotKeepsRegistrationOrder) {
  Registry reg;
  (void)reg.counter("z_total");
  (void)reg.gauge("a_gauge");
  (void)reg.counter("m_total");
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "z_total");  // registration order, not sorted
  EXPECT_EQ(snaps[1].name, "a_gauge");
  EXPECT_EQ(snaps[2].name, "m_total");
}

TEST(Registry, PrometheusTextFormat) {
  Registry reg;
  reg.set_help("req_total", "requests");
  reg.counter("req_total", {{"node", "1"}}).inc(7);
  Histogram h = reg.histogram("lat_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(2.0);
  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{node=\"1\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 2.55\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
}

TEST(Registry, CsvSnapshotFormat) {
  Registry reg;
  reg.counter("c_total", {{"node", "1"}, {"kind", "x"}}).inc(2);
  std::ostringstream out;
  reg.write_csv(out);
  EXPECT_NE(out.str().find("metric,kind,labels,value,count\n"),
            std::string::npos);
  EXPECT_NE(out.str().find("c_total,counter,node=1;kind=x,2,0\n"),
            std::string::npos);
}

TEST(Registry, CsvQuotesLabelValuesThatWouldBreakTheRow) {
  Registry reg;
  reg.counter("c_total", {{"path", "a,b"}, {"q", "say \"hi\""}}).inc(1);
  std::ostringstream out;
  reg.write_csv(out);
  // RFC 4180: the whole labels cell is quoted, inner quotes doubled.
  EXPECT_NE(out.str().find("c_total,counter,\"path=a,b;q=say \"\"hi\"\"\",1,0\n"),
            std::string::npos);
}

TEST(Registry, CsvEmptyRegistryIsHeaderOnly) {
  Registry reg;
  std::ostringstream out;
  reg.write_csv(out);
  EXPECT_EQ(out.str(), "metric,kind,labels,value,count\n");
}

// --- trace ring -----------------------------------------------------------

TraceEvent make_event(std::int64_t at, TraceEventType type) {
  TraceEvent event;
  event.at = at;
  event.type = type;
  return event;
}

TEST(RingTraceSink, BoundedAndCountsDrops) {
  RingTraceSink ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.emit(make_event(i, TraceEventType::kAex));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  // Oldest-to-newest visit of the retained (most recent) events.
  std::vector<std::int64_t> order;
  ring.for_each([&order](const TraceEvent& e) { order.push_back(e.at); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{2, 3, 4}));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TeeTraceSink, FansOutToEverySink) {
  RingTraceSink a(8), b(8);
  TeeTraceSink tee;
  tee.add(&a);
  tee.add(&b);
  tee.emit(make_event(1, TraceEventType::kAex));
  tee.remove(&b);
  tee.emit(make_event(2, TraceEventType::kAex));
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(b.total(), 1u);
}

// --- JSONL export ---------------------------------------------------------

TEST(TraceExport, JsonLineRendersTypedFields) {
  TraceEvent event;
  event.at = 1500000000;
  event.type = TraceEventType::kAdoption;
  event.node = 3;
  event.peer = 4;
  event.a = 1499998000;
  event.b = 1500002000;
  std::ostringstream out;
  write_json_line(event, out);
  EXPECT_EQ(out.str(),
            "{\"t\":1500000000,\"type\":\"adoption\",\"node\":3,"
            "\"source\":4,\"before\":1499998000,\"adopted\":1500002000,"
            "\"step_ns\":4000}");
}

TEST(TraceExport, JsonlWritesOneLinePerEvent) {
  RingTraceSink ring(4);
  ring.emit(make_event(1, TraceEventType::kAex));
  ring.emit(make_event(2, TraceEventType::kClockStep));
  std::ostringstream out;
  write_jsonl(ring, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"t\":1,\"type\":\"aex\""), std::string::npos);
  EXPECT_NE(text.find("{\"t\":2,\"type\":\"clock_step\""), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

// --- causal spans ---------------------------------------------------------

TEST(SpanId, PacksNodeAndSequence) {
  const SpanId id = make_span_id(3, 17);
  EXPECT_EQ(span_node(id), 3u);
  EXPECT_EQ(span_seq(id), 17u);
  EXPECT_NE(make_span_id(1, 1), make_span_id(2, 1));
  EXPECT_NE(make_span_id(1, 1), make_span_id(1, 2));
  // seq >= 1 keeps every real span id nonzero (0 = "no span").
  EXPECT_NE(make_span_id(0, 1), 0u);
}

TraceEvent calibration_event(SimTime at, NodeId node, SpanId span,
                             double f_hz) {
  TraceEvent event;
  event.at = at;
  event.type = TraceEventType::kCalibration;
  event.node = node;
  event.span = span;
  event.x = f_hz;
  event.y = 0.999;
  event.a = 16;
  return event;
}

TraceEvent adoption_event(SimTime at, NodeId node, NodeId source,
                          SpanId span, std::int64_t before,
                          std::int64_t adopted) {
  TraceEvent event;
  event.at = at;
  event.type = TraceEventType::kAdoption;
  event.node = node;
  event.peer = source;
  event.span = span;
  event.a = before;
  event.b = adopted;
  return event;
}

TEST(SpanIndex, ReconstructsEpisodesAndCauseEdges) {
  // Node 3 calibrates (poisoned slope); node 1 then recovers from an
  // AEX by adopting node 3's clock — the F- infection step.
  const SpanId victim_span = make_span_id(3, 1);
  const SpanId honest_span = make_span_id(1, 1);
  std::vector<TraceEvent> events;
  events.push_back(calibration_event(1000, 3, victim_span, 2.61e9));
  TraceEvent aex;
  aex.at = 2000;
  aex.type = TraceEventType::kAex;
  aex.node = 1;
  aex.span = honest_span;
  aex.a = 1;
  events.push_back(aex);
  events.push_back(adoption_event(2500, 1, 3, honest_span, 100, 8200100));

  const SpanIndex index(events);
  ASSERT_EQ(index.spans().size(), 2u);
  const Span& calib = index.spans()[0];
  EXPECT_EQ(calib.id, victim_span);
  EXPECT_EQ(calib.node, 3u);
  EXPECT_EQ(calib.kind, SpanKind::kCalibration);
  EXPECT_TRUE(calib.has_calibration);
  EXPECT_DOUBLE_EQ(calib.calib_slope_hz, 2.61e9);
  EXPECT_EQ(calib.cause, 0u);

  const Span& untaint = index.spans()[1];
  EXPECT_EQ(untaint.id, honest_span);
  EXPECT_EQ(untaint.kind, SpanKind::kUntaint);
  EXPECT_EQ(untaint.start, 2000);
  EXPECT_EQ(untaint.end, 2500);
  EXPECT_EQ(untaint.events, (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(untaint.has_adoption);
  EXPECT_EQ(untaint.adoption_source, 3u);
  EXPECT_EQ(untaint.adoption_step_ns, 8200000);
  // The cross-node cause edge: the adoption points at the span in
  // which its source last calibrated.
  EXPECT_EQ(untaint.cause, victim_span);

  const auto chain = index.chain(honest_span);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0]->id, honest_span);
  EXPECT_EQ(chain[1]->id, victim_span);
  EXPECT_EQ(index.find(make_span_id(9, 9)), nullptr);
  EXPECT_TRUE(index.chain(make_span_id(9, 9)).empty());
}

TEST(SpanIndex, ChainIsCycleSafe) {
  // Two calibration spans adopting each other's clocks: the cause edges
  // form a loop; chain() must terminate.
  const SpanId a = make_span_id(1, 1);
  const SpanId b = make_span_id(2, 1);
  std::vector<TraceEvent> events;
  events.push_back(calibration_event(100, 1, a, 2.9e9));
  events.push_back(calibration_event(200, 2, b, 2.9e9));
  events.push_back(adoption_event(300, 1, 2, a, 0, 10));
  events.push_back(adoption_event(400, 2, 1, b, 0, 10));
  const SpanIndex index(events);
  EXPECT_EQ(index.chain(a).size(), 2u);
  EXPECT_EQ(index.chain(b).size(), 2u);
}

// --- multi-stream merge ---------------------------------------------------

std::string jsonl_of(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  for (const TraceEvent& event : events) {
    write_json_line(event, os);
    os << '\n';
  }
  return os.str();
}

TEST(MergeNodeStreams, OrderIndependentAndByteIdentical) {
  // Three streams with *overlapping* timestamps (each node's epoch is
  // its own): the merge must be node-primary and byte-identical for
  // every input permutation, not time-interleaved.
  NodeStream n1{1, {calibration_event(500, 1, make_span_id(1, 1), 2.9e9),
                    adoption_event(900, 1, 2, make_span_id(1, 2), 0, 10)}};
  NodeStream n2{2, {calibration_event(100, 2, make_span_id(2, 1), 2.9e9)}};
  NodeStream n3{3, {adoption_event(300, 3, 1, make_span_id(3, 1), 0, 10)}};

  const std::string forward = jsonl_of(merge_node_streams({n1, n2, n3}));
  EXPECT_EQ(forward, jsonl_of(merge_node_streams({n3, n2, n1})));
  EXPECT_EQ(forward, jsonl_of(merge_node_streams({n2, n1, n3})));

  // Node-primary: all of node 1 precedes all of node 2 even though node
  // 2's timestamps are smaller, and each stream keeps internal order.
  const std::vector<TraceEvent> merged = merge_node_streams({n3, n2, n1});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].node, 1u);
  EXPECT_EQ(merged[1].node, 1u);
  EXPECT_EQ(merged[2].node, 2u);
  EXPECT_EQ(merged[3].node, 3u);
  EXPECT_EQ(merged[0].at, 500);
  EXPECT_EQ(merged[1].at, 900);
}

TEST(MergeNodeStreams, DuplicateNodeIdsStayTotallyOrdered) {
  // Two streams claiming the same origin (a re-shipped dump): content
  // tie-break keeps the merge a total order, still input-order-free.
  NodeStream a{7, {calibration_event(100, 7, make_span_id(7, 1), 2.9e9)}};
  NodeStream b{7, {calibration_event(50, 7, make_span_id(7, 2), 3.0e9)}};
  EXPECT_EQ(jsonl_of(merge_node_streams({a, b})),
            jsonl_of(merge_node_streams({b, a})));
}

TEST(SpanIndex, MergedStreamsJoinCrossNodeSpans) {
  // The requester's span id travels inside the sealed TaRequest, so the
  // TA's kTaServe event carries it. Merging the requester's stream with
  // the TA's stream must land both nodes' events in ONE span even
  // though no single stream contains the whole episode.
  const SpanId span = make_span_id(1, 1);
  NodeStream requester{1,
                       {calibration_event(1000, 1, span, 2.9e9)}};
  TraceEvent serve;
  serve.at = 77;  // TA's own epoch — incomparable with the requester's
  serve.type = TraceEventType::kTaServe;
  serve.node = 9;
  serve.peer = 1;
  serve.span = span;
  NodeStream ta{9, {serve}};

  const SpanIndex index(std::vector<NodeStream>{ta, requester});
  ASSERT_EQ(index.spans().size(), 1u);
  const Span& joined = index.spans()[0];
  EXPECT_EQ(joined.id, span);
  EXPECT_EQ(joined.node, 1u);
  EXPECT_EQ(joined.events.size(), 2u);
  EXPECT_TRUE(joined.has_calibration);
}

// --- online detectors -----------------------------------------------------

TEST(Detectors, SlopeNeedsQuorumThenFlagsTheOutlier) {
  const DetectorConfig config;
  const auto detector = make_slope_detector(config);
  std::vector<Alarm> alarms;
  detector->on_event(calibration_event(1, 1, make_span_id(1, 1), 2.900e9),
                     &alarms);
  detector->on_event(calibration_event(2, 2, make_span_id(2, 1), 2.9001e9),
                     &alarms);
  EXPECT_TRUE(alarms.empty());  // below quorum: no baseline yet
  detector->on_event(calibration_event(3, 3, make_span_id(3, 1), 2.61e9),
                     &alarms);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].detector, DetectorKind::kSlope);
  EXPECT_EQ(alarms[0].node, 3u);
  EXPECT_EQ(alarms[0].span, make_span_id(3, 1));
  EXPECT_LT(alarms[0].value, -config.slope_tolerance_ppm);  // F-: slow slope
}

TEST(Detectors, SlopeUsesNominalPriorWithoutQuorum) {
  DetectorConfig config;
  config.nominal_frequency_hz = 2.9e9;
  const auto detector = make_slope_detector(config);
  std::vector<Alarm> alarms;
  detector->on_event(calibration_event(1, 3, make_span_id(3, 1), 2.61e9),
                     &alarms);
  ASSERT_EQ(alarms.size(), 1u);  // first calibration, no quorum needed
  EXPECT_EQ(alarms[0].node, 3u);
}

TEST(Detectors, DisagreementEdgeTriggersAndAttributesTheOutlier) {
  const DetectorConfig config;
  const auto detector = make_disagreement_detector(config);
  std::vector<Alarm> alarms;
  detector->on_event(calibration_event(1, 1, make_span_id(1, 1), 2.9e9),
                     &alarms);
  EXPECT_TRUE(alarms.empty());  // one slope: no spread to measure
  detector->on_event(calibration_event(2, 2, make_span_id(2, 1), 2.61e9),
                     &alarms);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].detector, DetectorKind::kDisagreement);
  // Two slopes are equidistant from their midpoint: unattributable.
  EXPECT_EQ(alarms[0].node, 0u);
  detector->on_event(calibration_event(3, 3, make_span_id(3, 1), 2.9e9),
                     &alarms);
  EXPECT_EQ(alarms.size(), 1u);  // still in excursion: edge-triggered
  // Node 2 re-calibrates cleanly; the spread heals and re-arms.
  detector->on_event(calibration_event(4, 2, make_span_id(2, 2), 2.9e9),
                     &alarms);
  EXPECT_EQ(alarms.size(), 1u);
  detector->on_event(calibration_event(5, 2, make_span_id(2, 3), 2.61e9),
                     &alarms);
  ASSERT_EQ(alarms.size(), 2u);
  // Three slopes now: the outlier is attributable.
  EXPECT_EQ(alarms[1].node, 2u);
}

TEST(Detectors, JumpUsesFloorAndRecentMedianAndIgnoresTheTa) {
  DetectorConfig config;
  config.ta_address = 4;
  const auto detector = make_jump_detector(config);
  std::vector<Alarm> alarms;
  // TA adoptions are ground truth: never suspicious.
  detector->on_event(adoption_event(1, 1, 4, 0, 0, 900000000), &alarms);
  // Backward steps cannot propagate a fast clock.
  detector->on_event(adoption_event(2, 1, 2, 0, 1000, 500), &alarms);
  // Sub-floor drift repair (2 ms) seeds the running median quietly.
  detector->on_event(adoption_event(3, 1, 2, 0, 0, 2000000), &alarms);
  EXPECT_TRUE(alarms.empty());
  // An infection-sized jump clears max(floor, 8 x median(2ms)) = 16 ms.
  detector->on_event(
      adoption_event(4, 1, 3, make_span_id(1, 2), 0, 8200000000), &alarms);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].detector, DetectorKind::kJump);
  EXPECT_EQ(alarms[0].node, 1u);
  EXPECT_EQ(alarms[0].source, 3u);
  EXPECT_DOUBLE_EQ(alarms[0].value, 8200.0);
  EXPECT_DOUBLE_EQ(alarms[0].threshold, 16.0);
}

TEST(DetectorBank, RegistersZeroedFamiliesAndRecordsAlarms) {
  Registry registry;
  RingTraceSink ring(16);
  DetectorConfig config;
  config.nominal_frequency_hz = 2.9e9;
  DetectorBank bank(config, &registry, &ring);
  // All three families exist (at zero) before any alarm, so attack-free
  // exports carry explicit zeros.
  for (const char* kind : {"slope", "disagreement", "jump"}) {
    EXPECT_EQ(registry.value("triad_detector_alarms_total",
                             {{"detector", kind}}),
              0.0);
  }
  EXPECT_EQ(registry.value("triad_detector_first_alarm_seconds", {}), -1.0);
  EXPECT_EQ(bank.first_alarm_at(), -1);

  bank.emit(calibration_event(seconds(5), 3, make_span_id(3, 1), 2.61e9));
  ASSERT_EQ(bank.alarms().size(), 1u);
  EXPECT_EQ(bank.first_alarm_at(), seconds(5));
  EXPECT_EQ(registry.value("triad_detector_alarms_total",
                           {{"detector", "slope"}}),
            1.0);
  EXPECT_EQ(registry.value("triad_detector_first_alarm_seconds", {}), 5.0);
  // The alarm landed in the trace as a kDetectorAlarm event carrying the
  // triggering event's time and span.
  const std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kDetectorAlarm);
  EXPECT_EQ(events[0].at, seconds(5));
  EXPECT_EQ(events[0].span, make_span_id(3, 1));
  EXPECT_EQ(events[0].a,
            static_cast<std::int64_t>(DetectorKind::kSlope));
}

TEST(DetectorBank, IgnoresItsOwnAlarmEvents) {
  Registry registry;
  RingTraceSink ring(16);
  DetectorConfig config;
  config.nominal_frequency_hz = 2.9e9;
  DetectorBank bank(config, &registry, &ring);
  bank.emit(calibration_event(1, 3, make_span_id(3, 1), 2.61e9));
  ASSERT_EQ(bank.alarms().size(), 1u);
  // Replaying the recorded alarm (offline analysis feeds whole dumps
  // back in) must not double-count or recurse.
  bank.emit(ring.events()[0]);
  EXPECT_EQ(bank.alarms().size(), 1u);
  EXPECT_EQ(ring.total(), 1u);
}

// --- JSONL parsing --------------------------------------------------------

TEST(TraceExport, WriteParseWriteIsIdentityForEveryType) {
  for (int i = 0;
       i <= static_cast<int>(TraceEventType::kDetectorAlarm); ++i) {
    TraceEvent event;
    event.at = 1500000000;
    event.type = static_cast<TraceEventType>(i);
    event.node = 3;
    event.peer = 2;
    event.span = make_span_id(3, 7);
    event.a = 1;  // valid as bool, state, count, and detector kind
    event.b = 2;  // valid as bool rendering input and outcome/reason
    event.x = 1.5;
    event.y = 0.25;
    std::ostringstream first;
    write_json_line(event, first);
    const auto parsed = parse_json_line(first.str());
    ASSERT_TRUE(parsed.has_value()) << first.str();
    std::ostringstream second;
    write_json_line(*parsed, second);
    EXPECT_EQ(first.str(), second.str()) << "type " << i;
  }
}

TEST(TraceExport, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_json_line("").has_value());
  EXPECT_FALSE(parse_json_line("not json").has_value());
  EXPECT_FALSE(parse_json_line("{}").has_value());  // type is mandatory
  EXPECT_FALSE(parse_json_line("{\"t\":1}").has_value());
  EXPECT_FALSE(
      parse_json_line("{\"t\":1,\"type\":\"warp_drive\"}").has_value());
  EXPECT_FALSE(
      parse_json_line("{\"t\":1,\"type\":\"aex\",\"bogus\":1}").has_value());
  EXPECT_FALSE(
      parse_json_line("{\"t\":1,\"type\":\"aex\"} trailing").has_value());
  EXPECT_FALSE(
      parse_json_line("{\"t\":x,\"type\":\"aex\"}").has_value());
  // type must be a quoted enum name, not a number.
  EXPECT_FALSE(parse_json_line("{\"t\":1,\"type\":2}").has_value());
  EXPECT_TRUE(parse_json_line("{\"t\":1,\"type\":\"aex\",\"count\":3}")
                  .has_value());
}

TEST(TraceExport, ParseJsonlCountsRejectedLines) {
  const std::string text =
      "{\"t\":1,\"type\":\"aex\",\"node\":2,\"count\":1}\n"
      "garbage\n"
      "\n"
      "{\"t\":2,\"type\":\"clock_step\",\"offset_ns\":-500}\n";
  std::size_t rejected = 0;
  const std::vector<TraceEvent> events = parse_jsonl(text, &rejected);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kAex);
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_EQ(events[1].type, TraceEventType::kClockStep);
  EXPECT_EQ(events[1].a, -500);
}

// --- end-to-end determinism and attack reconstruction ---------------------

exp::ScenarioConfig observed_config(std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.enable_metrics = true;
  cfg.enable_detectors = true;
  cfg.trace_capacity = 1 << 16;
  return cfg;
}

struct ObservedRun {
  std::string prometheus;
  std::string jsonl;
};

ObservedRun run_observed(std::uint64_t seed, bool attack) {
  exp::Scenario sc(observed_config(seed));
  if (attack) {
    attacks::DelayAttackConfig config;
    config.kind = attacks::AttackKind::kFMinus;
    config.victim = sc.node_address(2);
    config.ta_address = sc.ta_address();
    config.added_delay = milliseconds(100);
    sc.add_delay_attack(config);
  }
  sc.start();
  sc.run_until(minutes(3));
  ObservedRun run;
  std::ostringstream prom, jsonl;
  sc.metrics()->write_prometheus(prom);
  write_jsonl(*sc.trace(), jsonl);
  run.prometheus = prom.str();
  run.jsonl = jsonl.str();
  return run;
}

TEST(ObsDeterminism, SeededRunsProduceByteIdenticalExports) {
  const ObservedRun first = run_observed(77, /*attack=*/false);
  const ObservedRun second = run_observed(77, /*attack=*/false);
  EXPECT_EQ(first.prometheus, second.prometheus);
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_FALSE(first.jsonl.empty());
  EXPECT_NE(first.prometheus.find("triad_node_adoptions_total"),
            std::string::npos);
  const ObservedRun other = run_observed(78, /*attack=*/false);
  EXPECT_NE(first.jsonl, other.jsonl);
}

TEST(ObsDeterminism, FMinusTraceReconstructsTheAttackChain) {
  // The F- middlebox inflates the victim's calibration; the trace must
  // let a reader reconstruct the chain: taint (state change), peer
  // query, and an adoption of external evidence.
  const ObservedRun run = run_observed(9, /*attack=*/true);
  EXPECT_NE(run.jsonl.find("\"type\":\"state_change\",\"node\":3"),
            std::string::npos);
  EXPECT_NE(run.jsonl.find("\"type\":\"peer_query\",\"node\":3"),
            std::string::npos);
  EXPECT_NE(run.jsonl.find("\"type\":\"adoption\",\"node\":3"),
            std::string::npos);
  // And the metrics agree that the victim's adoption counter exists.
  EXPECT_NE(run.prometheus.find("triad_node_adoptions_total{node=\"3\"}"),
            std::string::npos);
}

TEST(ObsDetectors, HonestRunRaisesNoAlarmsAndDropsNoEvents) {
  exp::Scenario sc(observed_config(42));
  sc.start();
  sc.run_until(minutes(3));
  ASSERT_NE(sc.detectors(), nullptr);
  EXPECT_TRUE(sc.detectors()->alarms().empty());
  EXPECT_EQ(sc.detectors()->first_alarm_at(), -1);
  ASSERT_NE(sc.trace(), nullptr);
  EXPECT_EQ(sc.trace()->dropped(), 0u);
  // The export carries explicit zeros for every detector family plus the
  // drop counter, so dashboards can tell "quiet" from "not wired up".
  std::ostringstream prom;
  sc.metrics()->write_prometheus(prom);
  for (const char* kind : {"slope", "disagreement", "jump"}) {
    EXPECT_NE(prom.str().find("triad_detector_alarms_total{detector=\"" +
                              std::string(kind) + "\"} 0"),
              std::string::npos);
  }
  EXPECT_NE(prom.str().find("triad_detector_first_alarm_seconds -1"),
            std::string::npos);
  EXPECT_NE(prom.str().find("obs_trace_dropped_total 0"), std::string::npos);
}

TEST(ObsDetectors, FMinusAlarmsPrecedeTheFirstHonestJump) {
  exp::Scenario sc(observed_config(9));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  attack.added_delay = milliseconds(100);
  sc.add_delay_attack(attack);
  sc.start();
  sc.run_until(minutes(3));
  ASSERT_NE(sc.detectors(), nullptr);
  ASSERT_FALSE(sc.detectors()->alarms().empty());
  // The paper's detection story: the slope/disagreement alarms fire at
  // the victim's poisoned calibration, before any honest node adopts
  // the fast clock (the first infection jump).
  SimTime first_honest_jump = 0;
  for (const TraceEvent& event : sc.trace()->events()) {
    if (event.type != TraceEventType::kAdoption) continue;
    if (event.node == attack.victim || event.peer != attack.victim) continue;
    first_honest_jump = event.at;
    break;
  }
  ASSERT_GT(first_honest_jump, 0);
  EXPECT_LT(sc.detectors()->first_alarm_at(), first_honest_jump);
}

TEST(ObsForensics, FMinusReportIsDeterministicAndBlamesTheVictim) {
  const ObservedRun first = run_observed(9, /*attack=*/true);
  const ObservedRun second = run_observed(9, /*attack=*/true);
  std::size_t rejected = 0;
  std::vector<TraceEvent> events = parse_jsonl(first.jsonl, &rejected);
  EXPECT_EQ(rejected, 0u);
  ASSERT_FALSE(events.empty());
  const std::string report = forensic_report(events);
  EXPECT_EQ(report, forensic_report(parse_jsonl(second.jsonl, nullptr)));
  // The victim (address 3) runs ~10% slow after the poisoned
  // calibration; the report names it and measures the detection lead.
  EXPECT_NE(report.find("suspect: node 3"), std::string::npos);
  EXPECT_NE(report.find("detection latency:"), std::string::npos);
  // JSON rendering stays deterministic too.
  ForensicOptions options;
  options.json = true;
  const std::string json = forensic_report(events, options);
  EXPECT_EQ(json, forensic_report(std::move(events), options));
  EXPECT_NE(json.find("\"jumps\":["), std::string::npos);
}

TEST(ObsForensics, FMinusSpansChainBackToTheVictimCalibration) {
  const ObservedRun run = run_observed(9, /*attack=*/true);
  const SpanIndex index(parse_jsonl(run.jsonl, nullptr));
  ASSERT_FALSE(index.spans().size() < 2);
  // Find an honest node's infection: a forward adoption sourced from the
  // victim (address 3), then walk its cause edge back to the poisoned
  // calibration.
  const Span* infection = nullptr;
  for (const Span& span : index.spans()) {
    if (span.has_adoption && span.node != 3 && span.adoption_source == 3 &&
        span.adoption_step_ns > milliseconds(5)) {
      infection = &span;
      break;
    }
  }
  ASSERT_NE(infection, nullptr) << "no honest node adopted the fast clock";
  const auto chain = index.chain(infection->id);
  ASSERT_GE(chain.size(), 2u);
  EXPECT_EQ(chain[1]->node, 3u);
  EXPECT_TRUE(chain[1]->has_calibration);
  // The poisoned slope is ~10% below nominal 2.9 GHz.
  EXPECT_LT(chain[1]->calib_slope_hz, 2.7e9);
  EXPECT_GT(chain[1]->calib_slope_hz, 2.5e9);
}

}  // namespace
}  // namespace triad::obs
