// Coverage for tools/lint/triad_lint itself: every rule R1-R9 must fire
// on its known-bad fixture at the marked lines, the repo's own tree must
// lint clean, the committed R9 metric inventory must byte-match the
// tree, and the checked-in lint_rules.toml must stay in sync with the
// built-in defaults.
//
// Fixtures live in tests/lint_fixtures/ (excluded from tree scans) and
// mark each expected diagnostic with a `// LINT` rule comment, so the
// expectations survive edits without hardcoded line numbers.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using triad::lint::AllowEntry;
using triad::lint::Config;
using triad::lint::Diagnostic;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

std::filesystem::path fixture_path(const std::string& name) {
  return std::filesystem::path(TRIAD_LINT_FIXTURE_DIR) / name;
}

/// (rule, line) pairs marked `// LINT:<rule>` in fixture text.
std::set<std::pair<std::string, int>> markers(const std::string& text) {
  std::set<std::pair<std::string, int>> expected;
  std::istringstream lines(text);
  std::string line;
  int number = 0;
  while (std::getline(lines, line)) {
    ++number;
    for (std::size_t at = line.find("LINT:"); at != std::string::npos;
         at = line.find("LINT:", at + 1)) {
      std::size_t end = at + 5;
      while (end < line.size() && std::isalnum(static_cast<unsigned char>(
                                      line[end])) != 0) {
        ++end;
      }
      expected.emplace(line.substr(at + 5, end - at - 5), number);
    }
  }
  return expected;
}

std::set<std::pair<std::string, int>> fired(
    const std::vector<Diagnostic>& diagnostics) {
  std::set<std::pair<std::string, int>> result;
  for (const Diagnostic& diag : diagnostics) {
    result.emplace(diag.rule, diag.line);
  }
  return result;
}

/// Lints one fixture under a rel-path that opts it into the given rule's
/// file list, then checks fired (rule, line) pairs against the markers.
void expect_fixture_fires(const std::string& name, const std::string& rule) {
  const std::string text = read_file(fixture_path(name));
  const std::string rel = "tests/lint_fixtures/" + name;
  Config config = triad::lint::default_config();
  if (rule == "R2") config.r2_files.push_back(rel);
  if (rule == "R3") config.r3_files.push_back(rel);
  if (rule == "R4") config.r4_files.push_back(rel);
  const std::vector<Diagnostic> diagnostics =
      triad::lint::lint_source(rel, text, config);
  EXPECT_EQ(fired(diagnostics), markers(text)) << "fixture " << name;
  for (const Diagnostic& diag : diagnostics) {
    EXPECT_EQ(diag.rule, rule) << diag.format();
    EXPECT_EQ(diag.file, rel);
  }
}

TEST(LintFixtures, R1BannedIdentifiersFireAtMarkedLines) {
  expect_fixture_fires("r1_banned_clock.cpp", "R1");
}

TEST(LintFixtures, R2UnorderedIterationFiresAtMarkedLines) {
  expect_fixture_fires("r2_unordered_iter.cpp", "R2");
}

TEST(LintFixtures, R3UnpinnedFloatFiresAtMarkedLines) {
  expect_fixture_fires("r3_unpinned_float.cpp", "R3");
}

TEST(LintFixtures, R4HotPathAllocationFiresAtMarkedLines) {
  expect_fixture_fires("r4_hotpath_alloc.cpp", "R4");
}

TEST(LintFixtures, R1AmbientIoFiresAtMarkedLines) {
  expect_fixture_fires("r1_ambient_io.cpp", "R1");
}

// --- R6-R9: the cross-file analyses ---------------------------------------

/// Lints one fixture through the cross-file pass (lint_sources) under a
/// synthetic repo-relative path, then checks fired (rule, line) pairs
/// against the markers.
void expect_cross_fixture_fires(const std::string& name,
                                const std::string& rel,
                                const std::string& rule) {
  const std::string text = read_file(fixture_path(name));
  const std::vector<Diagnostic> diagnostics = triad::lint::lint_sources(
      {{rel, text}}, triad::lint::default_config());
  EXPECT_EQ(fired(diagnostics), markers(text)) << "fixture " << name;
  for (const Diagnostic& diag : diagnostics) {
    EXPECT_EQ(diag.rule, rule) << diag.format();
    EXPECT_EQ(diag.file, rel);
  }
}

TEST(LintFixtures, R6LayeringAndCycleFireAtMarkedLines) {
  // The R6 fixtures are a four-file set linted under synthetic src/
  // paths: a layer-2 header including a layer-5 one (upward edge), and
  // a two-header include cycle within one layer. Expected diagnostics
  // are the union of each file's markers, keyed by (file, line).
  const std::vector<std::pair<std::string, std::string>> layout = {
      {"r6_layering.h", "src/net/r6_layering.h"},
      {"r6_cycle_a.h", "src/sim/r6_cycle_a.h"},
      {"r6_cycle_b.h", "src/sim/r6_cycle_b.h"},
      {"r6_upper.h", "src/timed/r6_upper.h"},
  };
  std::vector<triad::lint::SourceFile> files;
  std::set<std::pair<std::string, int>> expected;  // (file, line)
  for (const auto& [name, rel] : layout) {
    const std::string text = read_file(fixture_path(name));
    for (const auto& [rule, line] : markers(text)) {
      EXPECT_EQ(rule, "R6") << name;
      expected.emplace(rel, line);
    }
    files.push_back({rel, text});
  }
  const std::vector<Diagnostic> diagnostics =
      triad::lint::lint_sources(files, triad::lint::default_config());
  std::set<std::pair<std::string, int>> got;
  for (const Diagnostic& diag : diagnostics) {
    EXPECT_EQ(diag.rule, "R6") << diag.format();
    got.emplace(diag.file, diag.line);
  }
  EXPECT_EQ(got, expected);
}

TEST(LintFixtures, R7CtorInitOrderFiresAtMarkedLines) {
  // The seeded PR 9 TelemetryServer reproduction: both the in-class and
  // the out-of-line constructor forms, plus a clean earlier-member read
  // that must not fire.
  expect_cross_fixture_fires("r7_ctor_init_order.cpp",
                             "src/timed/r7_ctor_init_order.cpp", "R7");
}

TEST(LintFixtures, R7CaughtTheRealBugsBeforeTheyWereFixed) {
  // The exact shape R7 flagged in the live tree before this PR reordered
  // the declarations: &bind_error_ handed to the socket's constructor
  // while bind_error_ was declared after socket_.
  const std::string src =
      "class UdpTransportBug {\n"
      " public:\n"
      "  UdpTransportBug() : socket_(&bind_error_) {}\n"
      " private:\n"
      "  int socket_;\n"
      "  int bind_error_;\n"
      "};\n";
  const std::vector<Diagnostic> diags = triad::lint::lint_sources(
      {{"src/runtime/bug.cpp", src}}, triad::lint::default_config());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R7");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_EQ(diags[0].token, "bind_error_");
}

TEST(LintFixtures, R8UncheckedSyscallFiresAtMarkedLines) {
  const std::string name = "r8_unchecked_syscall.cpp";
  const std::string text = read_file(fixture_path(name));
  const std::string rel = "tests/lint_fixtures/" + name;
  Config config = triad::lint::default_config();
  config.r8_files.push_back(rel);
  // R8's watched set is derived from the R1 [allow] entries for the
  // file — close/shutdown are not R1-banned tokens, so the fixture
  // exercises the return-consumption check without R1 noise.
  config.allow.push_back({"R1", rel, "close"});
  config.allow.push_back({"R1", rel, "shutdown"});
  const std::vector<Diagnostic> diagnostics =
      triad::lint::lint_source(rel, text, config);
  EXPECT_EQ(fired(diagnostics), markers(text)) << "fixture " << name;
  for (const Diagnostic& diag : diagnostics) {
    EXPECT_EQ(diag.rule, "R8") << diag.format();
  }
}

TEST(LintFixtures, R8BareVoidCastWithoutReasonFires) {
  // This case cannot live in the fixture file: a `// LINT:R8` marker on
  // the same line would itself be the named reason that legalizes the
  // cast. A (void) discard with no comment on the line is a diagnostic.
  Config config = triad::lint::default_config();
  config.r8_files.push_back("src/runtime/fake_env.cpp");
  config.allow.push_back({"R1", "src/runtime/fake_env.cpp", "close"});
  const std::string src = "void f(int fd) {\n  (void)::close(fd);\n}\n";
  const std::vector<Diagnostic> diags =
      triad::lint::lint_source("src/runtime/fake_env.cpp", src, config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R8");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("named reason"), std::string::npos);
}

TEST(LintFixtures, R9KindConflictAndOrphanHelpFireAtMarkedLines) {
  expect_cross_fixture_fires("r9_metric_conflict.cpp",
                             "src/obs/r9_metric_conflict.cpp", "R9");
}

TEST(LintFixtures, R1RealEnvSyscallsAreNamedAllowEntriesNotABlanket) {
  // Each raw syscall RealEnv binds is its own (file, token) allow entry;
  // the same token in any other file — even the same directory — must
  // survive the allowlist and fail the tree.
  const Config config = triad::lint::default_config();
  std::vector<Diagnostic> diagnostics = {
      {"R1", "src/runtime/real_env.cpp", 311, "epoll_wait", "m"},
      {"R1", "src/runtime/other_env.cpp", 10, "epoll_wait", "m"},
      {"R1", "src/runtime/real_env.cpp", 20, "clock_gettime", "m"},
  };
  const triad::lint::TreeReport report =
      triad::lint::apply_allowlist(std::move(diagnostics), config);
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].file, "src/runtime/real_env.cpp");
  EXPECT_EQ(report.suppressed[0].token, "epoll_wait");
  // clock_gettime is not among real_env.cpp's listed tokens (RealEnv's
  // clock goes through MonotonicTimer), so it stays a diagnostic.
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].file, "src/runtime/other_env.cpp");
  EXPECT_EQ(report.diagnostics[1].token, "clock_gettime");
}

TEST(LintFixtures, R1HasNoBlanketLayerExemptions) {
  // Since PR 7 no directory is exempt from R1 — banned tokens fire even
  // inside the clock/util layers; each real binding site must be a named
  // allow entry instead.
  const std::string text = read_file(fixture_path("r1_banned_clock.cpp"));
  const Config config = triad::lint::default_config();
  EXPECT_TRUE(config.r1_exempt_prefixes.empty());
  EXPECT_FALSE(
      triad::lint::lint_source("src/runtime/impl.cpp", text, config).empty());
  EXPECT_FALSE(
      triad::lint::lint_source("src/util/impl.cpp", text, config).empty());
}

TEST(LintFixtures, R1MonotonicTimerBindingIsNamedAllowEntry) {
  // The single sanctioned wall-clock binding suppresses via the
  // allowlist, and only for that (file, token) pair.
  const Config config = triad::lint::default_config();
  std::vector<Diagnostic> diagnostics = {
      {"R1", "src/runtime/monotonic_timer.h", 41, "steady_clock", "m"},
      {"R1", "src/campaign/runner.cpp", 10, "steady_clock", "m"},
  };
  const triad::lint::TreeReport report =
      triad::lint::apply_allowlist(std::move(diagnostics), config);
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].file, "src/runtime/monotonic_timer.h");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].file, "src/campaign/runner.cpp");
}

TEST(LintFixtures, DiagnosticFormatIsFileLineRuleMessage) {
  const Diagnostic diag{"R1", "src/x.cpp", 12, "steady_clock", "msg"};
  EXPECT_EQ(diag.format(), "src/x.cpp:12: R1: msg");
}

// --- R5: the generated compile-time audit --------------------------------

bool gxx_available() {
  return std::system("g++ --version > /dev/null 2>&1") == 0;
}

int syntax_check(const std::filesystem::path& file) {
  const std::string cmd = "g++ -std=c++20 -fsyntax-only -I " +
                          std::string(TRIAD_LINT_SOURCE_ROOT) + "/src " +
                          file.string() + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

TEST(LintInvariants, GeneratedAuditCompilesAgainstRealHeaders) {
  if (!gxx_available()) GTEST_SKIP() << "g++ not on PATH";
  const std::filesystem::path out =
      std::filesystem::temp_directory_path() / "triad_lint_invariants.cpp";
  std::ofstream(out, std::ios::binary) << triad::lint::invariants_source();
  EXPECT_EQ(syntax_check(out), 0)
      << "generated static_assert audit no longer matches the real "
         "TraceEvent/SpanId layout";
  std::filesystem::remove(out);
}

TEST(LintInvariants, R5DriftedInvariantFailsTheCompile) {
  if (!gxx_available()) GTEST_SKIP() << "g++ not on PATH";
  // The fixture asserts the folklore 48-byte TraceEvent; the compile
  // must fail — that failure IS rule R5 firing.
  EXPECT_NE(syntax_check(fixture_path("r5_invariant_drift.cpp")), 0);
}

TEST(LintInvariants, AuditCoversTheLoadBearingClaims) {
  const std::string source = triad::lint::invariants_source();
  EXPECT_NE(source.find("sizeof(TraceEvent) == 56"), std::string::npos);
  EXPECT_NE(source.find("is_trivially_copyable_v<TraceEvent>"),
            std::string::npos);
  EXPECT_NE(source.find("kSpanNodeBits == 10"), std::string::npos);
  EXPECT_NE(source.find("offsetof(TraceEvent, span) == 20"),
            std::string::npos);
}

// --- config / allowlist ---------------------------------------------------

TEST(LintConfig, CheckedInTomlMirrorsBuiltinDefaults) {
  Config parsed;  // start empty: every field must come from the file
  std::string error;
  ASSERT_TRUE(triad::lint::parse_config(read_file(TRIAD_LINT_CONFIG), &parsed,
                                        &error))
      << error;
  const Config builtin = triad::lint::default_config();
  EXPECT_EQ(parsed.scan_dirs, builtin.scan_dirs);
  EXPECT_EQ(parsed.exclude_prefixes, builtin.exclude_prefixes);
  EXPECT_EQ(parsed.r1_banned, builtin.r1_banned);
  EXPECT_EQ(parsed.r1_call_only, builtin.r1_call_only);
  EXPECT_EQ(parsed.r1_exempt_prefixes, builtin.r1_exempt_prefixes);
  EXPECT_EQ(parsed.r2_files, builtin.r2_files);
  EXPECT_EQ(parsed.r3_files, builtin.r3_files);
  EXPECT_EQ(parsed.r4_files, builtin.r4_files);
  EXPECT_EQ(parsed.r4_banned, builtin.r4_banned);
  ASSERT_EQ(parsed.r6_layers.size(), builtin.r6_layers.size());
  for (std::size_t i = 0; i < parsed.r6_layers.size(); ++i) {
    EXPECT_EQ(parsed.r6_layers[i].prefix, builtin.r6_layers[i].prefix);
    EXPECT_EQ(parsed.r6_layers[i].rank, builtin.r6_layers[i].rank);
  }
  EXPECT_EQ(parsed.r8_files, builtin.r8_files);
  EXPECT_EQ(parsed.r9_prefixes, builtin.r9_prefixes);
  EXPECT_EQ(parsed.r9_docs, builtin.r9_docs);
  EXPECT_EQ(parsed.r9_inventory, builtin.r9_inventory);
  ASSERT_EQ(parsed.allow.size(), builtin.allow.size());
  for (std::size_t i = 0; i < parsed.allow.size(); ++i) {
    EXPECT_EQ(parsed.allow[i].rule, builtin.allow[i].rule);
    EXPECT_EQ(parsed.allow[i].file, builtin.allow[i].file);
    EXPECT_EQ(parsed.allow[i].token, builtin.allow[i].token);
  }
}

TEST(LintConfig, RejectsMalformedInput) {
  Config config;
  std::string error;
  EXPECT_FALSE(triad::lint::parse_config("[R1\nbanned = []", &config, &error));
  EXPECT_FALSE(
      triad::lint::parse_config("[R9]\nfiles = [\"x\"]", &config, &error));
  EXPECT_FALSE(triad::lint::parse_config(
      "[allow]\nentries = [\"R1 only-two\"]", &config, &error));
}

TEST(LintAllow, EntriesSuppressMatchingDiagnostics) {
  Config config = triad::lint::default_config();
  config.allow = {{"R1", "src/a.cpp", "steady_clock"},
                  {"R3", "src/b.cpp", "*"},
                  {"R4", "src/never.cpp", "new"}};
  std::vector<Diagnostic> diagnostics = {
      {"R1", "src/a.cpp", 3, "steady_clock", "m"},
      {"R1", "src/a.cpp", 9, "system_clock", "m"},  // token mismatch
      {"R3", "src/b.cpp", 4, "%f", "m"},            // wildcard token
  };
  const triad::lint::TreeReport report =
      triad::lint::apply_allowlist(std::move(diagnostics), config);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].token, "system_clock");
  EXPECT_EQ(report.suppressed.size(), 2u);
  ASSERT_EQ(report.unused_allows.size(), 1u);
  EXPECT_EQ(report.unused_allows[0].file, "src/never.cpp");
}

TEST(LintAllow, FixAllowlistAppendsAndIsIdempotent) {
  const std::string base = "[allow]\nentries = [\n  \"R1 src/a.cpp x\",\n]\n";
  const std::vector<Diagnostic> diagnostics = {
      {"R2", "src/obs/export.cpp", 7, "cells", "m"}};
  const std::string once = triad::lint::add_to_allowlist(base, diagnostics);
  Config parsed;
  std::string error;
  ASSERT_TRUE(triad::lint::parse_config(once, &parsed, &error)) << error;
  ASSERT_EQ(parsed.allow.size(), 2u);
  EXPECT_EQ(parsed.allow[1].rule, "R2");
  EXPECT_EQ(parsed.allow[1].file, "src/obs/export.cpp");
  EXPECT_EQ(parsed.allow[1].token, "cells");
  // Baselining the same diagnostic again must not duplicate the entry.
  EXPECT_EQ(triad::lint::add_to_allowlist(once, diagnostics), once);
  // A config without an [allow] section gains one.
  const std::string grown = triad::lint::add_to_allowlist("", diagnostics);
  Config from_empty;
  ASSERT_TRUE(triad::lint::parse_config(grown, &from_empty, &error)) << error;
  ASSERT_EQ(from_empty.allow.size(), 1u);
}

// --- the repo itself ------------------------------------------------------

TEST(LintTree, MetricInventoryGoldenMatchesTree) {
  // The committed scripts/prom_families.txt must byte-match what the
  // harvest renders from the tree — it feeds check_prom.awk's required-
  // series lists and the DESIGN.md catalogue check, so drift here means
  // the exporter contract and its validators have diverged.
  const Config config = triad::lint::default_config();
  const std::vector<triad::lint::SourceFile> files =
      triad::lint::read_tree(TRIAD_LINT_SOURCE_ROOT, config);
  const std::string rendered = triad::lint::render_metric_inventory(
      triad::lint::harvest_metrics(files, config));
  const std::string committed =
      read_file(std::filesystem::path(TRIAD_LINT_SOURCE_ROOT) /
                config.r9_inventory);
  EXPECT_EQ(committed, rendered)
      << "regenerate with: triad_lint --emit-metric-inventory "
      << config.r9_inventory;
  // Sanity: the harvest actually saw the tree (68 families as of PR 10).
  EXPECT_GT(std::count(rendered.begin(), rendered.end(), '\n'), 50);
}

TEST(LintTree, RepoSourcesLintClean) {
  Config config = triad::lint::default_config();
  std::string error;
  ASSERT_TRUE(triad::lint::parse_config(read_file(TRIAD_LINT_CONFIG), &config,
                                        &error))
      << error;
  const triad::lint::TreeReport report =
      triad::lint::lint_tree(TRIAD_LINT_SOURCE_ROOT, config);
  EXPECT_GT(report.files_scanned.size(), 100u)
      << "tree scan found suspiciously few files — wrong root?";
  for (const Diagnostic& diag : report.diagnostics) {
    ADD_FAILURE() << diag.format();
  }
  for (const AllowEntry& entry : report.unused_allows) {
    ADD_FAILURE() << "stale allowlist entry: " << entry.rule << " "
                  << entry.file << " " << entry.token;
  }
}

}  // namespace
