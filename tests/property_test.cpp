// Property-based and failure-injection tests across module boundaries.
//
//  * The attack-delay law: an F+/F- attacker adding delay d to one probe
//    class biases the calibrated frequency by exactly ±d per second of
//    wait-time spread — swept over d.
//  * Protocol liveness and monotonicity under packet loss, AEX storms,
//    and TA outages.
//  * Marzullo invariants over random interval sets.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "exp/recorder.h"
#include "exp/scenario.h"
#include "resilient/marzullo.h"
#include "resilient/triad_plus.h"
#include "util/rng.h"

namespace triad {
namespace {

// ---------------------------------------------------------------------
// Attack-delay law: F_calib ≈ F_TSC * (1 ± d / 1s).

class AttackDelayLaw
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AttackDelayLaw, CalibratedFrequencyFollowsTheFormula) {
  const auto [delay_ms, kind_int] = GetParam();
  const auto kind = kind_int == 0 ? attacks::AttackKind::kFPlus
                                  : attacks::AttackKind::kFMinus;

  exp::ScenarioConfig cfg;
  cfg.seed = 7000 + static_cast<std::uint64_t>(delay_ms) * 2 +
             static_cast<std::uint64_t>(kind_int);
  cfg.machine_interrupts = false;
  exp::Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = kind;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  attack.added_delay = milliseconds(delay_ms);
  sc.add_delay_attack(attack);
  sc.start();
  sc.run_until(minutes(3));

  const double d_seconds = static_cast<double>(delay_ms) / 1000.0;
  const double expected =
      tsc::kPaperTscFrequencyHz *
      (kind == attacks::AttackKind::kFPlus ? 1.0 + d_seconds
                                           : 1.0 - d_seconds);
  // Jitter-limited accuracy: within 500 ppm of the formula.
  EXPECT_NEAR(sc.node(2).calibrated_frequency_hz(), expected,
              expected * 500e-6)
      << "delay " << delay_ms << " ms, kind " << kind_int;
}

INSTANTIATE_TEST_SUITE_P(
    DelaySweep, AttackDelayLaw,
    ::testing::Combine(::testing::Values(20, 50, 100, 200, 400),
                       ::testing::Values(0, 1)));

// ---------------------------------------------------------------------
// Liveness & monotonicity under packet loss.

class LossResilience : public ::testing::TestWithParam<double> {};

TEST_P(LossResilience, ClusterCalibratesAndServesUnderLoss) {
  exp::ScenarioConfig cfg;
  cfg.seed = 8000 + static_cast<std::uint64_t>(GetParam() * 100);
  exp::Scenario sc(std::move(cfg));
  sc.network().set_loss_probability(GetParam());
  sc.start();
  sc.run_until(minutes(10));

  for (std::size_t i = 0; i < 3; ++i) {
    if (GetParam() <= 0.1) {
      // Light loss: the snapshot at t=10 min finds the node serving.
      // Under heavy loss the node is legitimately mid-recovery at any
      // given instant — availability below is the meaningful bound.
      EXPECT_EQ(sc.node(i).state(), NodeState::kOk)
          << "node " << i << " under " << GetParam() * 100 << "% loss";
    }
    EXPECT_GT(sc.node(i).calibrated_frequency_hz(), 0.0);
    // Loss costs availability (every untaint round needs several
    // datagrams to survive), but the node must keep functioning: at
    // 25 % loss availability drops to ~1/3, never to zero.
    EXPECT_GT(sc.node(i).availability(), GetParam() <= 0.1 ? 0.5 : 0.25);
  }
}

TEST_P(LossResilience, TimestampsStayMonotonicUnderLoss) {
  exp::ScenarioConfig cfg;
  cfg.seed = 8100 + static_cast<std::uint64_t>(GetParam() * 100);
  exp::Scenario sc(std::move(cfg));
  sc.network().set_loss_probability(GetParam());
  sc.start();

  SimTime prev = 0;
  bool violated = false;
  sim::PeriodicTimer sampler(sc.simulation(), milliseconds(50), [&] {
    for (std::size_t i = 0; i < 3; ++i) {
      if (const auto ts = sc.node(i).serve_timestamp()) {
        // Per-node monotonicity only; use node 1's stream.
        if (i == 0) {
          if (*ts <= prev) violated = true;
          prev = *ts;
        }
      }
    }
  });
  sc.run_until(minutes(5));
  EXPECT_FALSE(violated);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, LossResilience,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25));

// ---------------------------------------------------------------------
// AEX storms: very frequent interrupts must not break safety.

class AexStorm : public ::testing::TestWithParam<int> {};

TEST_P(AexStorm, FrequentInterruptsDegradeAvailabilityNotSafety) {
  exp::ScenarioConfig cfg;
  cfg.seed = 8200 + static_cast<std::uint64_t>(GetParam());
  cfg.machine_interrupts = false;
  cfg.environments = {exp::AexEnvironment::kNone, exp::AexEnvironment::kNone,
                      exp::AexEnvironment::kNone};
  exp::Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(minutes(1));  // calibrate in peace

  // Storm: attacker interrupts node 1 every `period` ms for 2 minutes.
  const Duration period = milliseconds(GetParam());
  auto& thread = sc.node(0).monitoring_thread();
  sim::PeriodicTimer storm(sc.simulation(), period,
                           [&] { thread.deliver_aex(); });
  SimTime prev = 0;
  bool violated = false;
  sim::PeriodicTimer sampler(sc.simulation(), milliseconds(25), [&] {
    if (const auto ts = sc.node(0).serve_timestamp()) {
      if (*ts <= prev) violated = true;
      prev = *ts;
    }
  });
  sc.run_for(minutes(2));
  storm.stop();

  EXPECT_FALSE(violated);
  // Peers stay clean, so the stormed node recovers via peer untainting
  // and keeps serving most of the time.
  EXPECT_GT(sc.node(0).stats().peer_rounds, 100u);
  EXPECT_EQ(sc.node(1).stats().aex_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(StormPeriods, AexStorm,
                         ::testing::Values(5, 20, 100));

// ---------------------------------------------------------------------
// TA outage: nodes keep extrapolating and recover when it returns.

TEST(FailureInjection, TaOutageThenRecovery) {
  exp::ScenarioConfig cfg;
  cfg.seed = 8300;
  exp::Scenario sc(std::move(cfg));

  class TaBlackhole final : public net::Middlebox {
   public:
    explicit TaBlackhole(NodeId ta) : ta_(ta) {}
    bool active = false;
    Action on_packet(const net::Packet& p, SimTime) override {
      return {.extra_delay = 0,
              .drop = active && (p.src == ta_ || p.dst == ta_)};
    }

   private:
    NodeId ta_;
  } blackhole(sc.ta_address());
  sc.network().add_middlebox(&blackhole);

  sc.start();
  sc.run_until(minutes(2));
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(sc.node(i).state(), NodeState::kOk);
  }

  blackhole.active = true;  // TA unreachable for 10 minutes
  sc.run_for(minutes(10));
  // Correlated AEXs during the outage leave nodes stuck in RefCalib
  // (resending) — but nobody crashes and no clock goes backwards.
  blackhole.active = false;
  sc.run_for(minutes(2));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sc.node(i).state(), NodeState::kOk)
        << "node " << i << " must recover after the TA returns";
  }
  sc.network().remove_middlebox(&blackhole);
}

TEST(FailureInjection, SingleNodePartitionHealsViaTa) {
  exp::ScenarioConfig cfg;
  cfg.seed = 8400;
  cfg.machine_interrupts = false;
  exp::Scenario sc(std::move(cfg));

  // Node 1 can talk to the TA but not to its peers.
  class PeerPartition final : public net::Middlebox {
   public:
    PeerPartition(NodeId node, NodeId ta) : node_(node), ta_(ta) {}
    Action on_packet(const net::Packet& p, SimTime) override {
      const bool involves_node = p.src == node_ || p.dst == node_;
      const bool involves_ta = p.src == ta_ || p.dst == ta_;
      return {.extra_delay = 0, .drop = involves_node && !involves_ta};
    }

   private:
    NodeId node_, ta_;
  } partition(sc.node_address(0), sc.ta_address());
  sc.network().add_middlebox(&partition);

  sc.start();
  sc.run_until(minutes(2));
  ASSERT_EQ(sc.node(0).state(), NodeState::kOk);

  // Every AEX now forces a TA fallback (peers unreachable).
  sc.node(0).monitoring_thread().deliver_aex();
  sc.run_for(seconds(2));
  EXPECT_EQ(sc.node(0).state(), NodeState::kOk);
  EXPECT_GT(sc.node(0).stats().ta_fallbacks, 0u);
  sc.network().remove_middlebox(&partition);
}

// ---------------------------------------------------------------------
// Byzantine threshold: how many F- compromised nodes can the hardened
// policy tolerate? The true-chimer quorum is a strict majority, so up to
// floor((n-1)/2) compromised nodes must be survivable in an n-node
// cluster — and one more must break it.

class ByzantineThreshold
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ByzantineThreshold, TriadPlusToleratesMinorityCompromise) {
  const auto [cluster_size, compromised] = GetParam();
  exp::ScenarioConfig cfg;
  cfg.seed = 8800 + static_cast<std::uint64_t>(cluster_size * 10 +
                                               compromised);
  cfg.node_count = static_cast<std::size_t>(cluster_size);
  cfg.node_template = resilient::harden(cfg.node_template);
  cfg.policy_factory = [] { return resilient::make_triad_plus_policy(); };
  exp::Scenario sc(std::move(cfg));
  // Compromise the LAST `compromised` nodes.
  for (int v = cluster_size - compromised; v < cluster_size; ++v) {
    attacks::DelayAttackConfig attack;
    attack.kind = attacks::AttackKind::kFMinus;
    attack.victim = sc.node_address(static_cast<std::size_t>(v));
    attack.ta_address = sc.ta_address();
    sc.add_delay_attack(attack);
  }
  exp::Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(8));

  const bool minority = 2 * compromised < cluster_size;
  double honest_worst = 0;
  for (int i = 0; i < cluster_size - compromised; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    honest_worst = std::max({honest_worst,
                             std::abs(rec.drift_ms(idx).max_value()),
                             std::abs(rec.drift_ms(idx).min_value())});
  }
  if (minority) {
    EXPECT_LT(honest_worst, 150.0)
        << cluster_size << " nodes, " << compromised
        << " compromised: honest majority must hold";
  }
  // (With a compromised majority nothing can be guaranteed; we only
  // check the protocol does not crash and still serves — liveness.)
  for (int i = 0; i < cluster_size; ++i) {
    EXPECT_GT(sc.node(static_cast<std::size_t>(i)).availability(), 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, ByzantineThreshold,
    ::testing::Values(std::make_tuple(3, 1), std::make_tuple(5, 1),
                      std::make_tuple(5, 2), std::make_tuple(7, 3),
                      std::make_tuple(7, 4) /* majority compromised */));

// ---------------------------------------------------------------------
// Marzullo invariants over random interval sets.

class MarzulloProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarzulloProperty, IntersectionInvariants) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.next_below(12);
  std::vector<resilient::Interval> intervals;
  for (std::size_t i = 0; i < n; ++i) {
    const SimTime lo = rng.uniform_int(-1000, 1000);
    const SimTime len = rng.uniform_int(0, 500);
    intervals.push_back({lo, lo + len});
  }
  const auto result = resilient::marzullo(intervals);

  // (1) count is achievable: the returned window overlaps exactly that
  // many source intervals.
  const auto overlapped = resilient::overlapping(intervals, result.best);
  EXPECT_EQ(overlapped.size(), result.count);

  // (2) count is maximal: no single point is covered by more intervals.
  for (SimTime probe = -1100; probe <= 1600; probe += 7) {
    std::size_t cover = 0;
    for (const auto& iv : intervals) {
      if (iv.lo <= probe && probe <= iv.hi) ++cover;
    }
    EXPECT_LE(cover, result.count) << "probe " << probe;
  }

  // (3) every point in the window is covered by `count` intervals.
  const SimTime mid = result.midpoint();
  std::size_t cover_mid = 0;
  for (const auto& iv : intervals) {
    if (iv.lo <= mid && mid <= iv.hi) ++cover_mid;
  }
  EXPECT_EQ(cover_mid, result.count);
}

INSTANTIATE_TEST_SUITE_P(RandomIntervals, MarzulloProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace triad
