// Per-file rules: each checks one translation unit's token stream in
// isolation. Cross-file analyses (R6/R7/R9) live in graph.h.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace triad::lint {

// Shared path helpers (repo-relative, forward-slash paths).
[[nodiscard]] bool has_prefix(const std::string& path,
                              const std::vector<std::string>& set);
[[nodiscard]] bool in_file_list(const std::string& path,
                                const std::vector<std::string>& set);

/// R1: banned nondeterminism identifiers.
void check_r1(const std::string& path, const std::vector<Token>& tokens,
              const Config& cfg, std::vector<Diagnostic>* out);

/// R2: unordered-container iteration in byte-stable export paths.
void check_r2(const std::string& path, const std::vector<Token>& tokens,
              std::vector<Diagnostic>* out);

/// R3: %f/%g/%e printf conversions without an explicit precision.
void check_r3(const std::string& path, const std::vector<Token>& tokens,
              std::vector<Diagnostic>* out);

/// R4: allocation/type-erasure in designated hot-path files.
void check_r4(const std::string& path, const std::vector<Token>& tokens,
              const Config& cfg, std::vector<Diagnostic>* out);

/// R8: every call to a name in `syscalls` must consume its return value —
/// assigned/compared/returned/passed, or cast to (void) with a comment on
/// the same line naming why discarding is safe. `lexed.comment_lines`
/// supplies the comment evidence. Member calls (x.connect()) are skipped:
/// they are someone else's API, same convention as R1.
void check_r8(const std::string& path, const LexOutput& lexed,
              const std::vector<std::string>& syscalls,
              std::vector<Diagnostic>* out);

}  // namespace triad::lint
