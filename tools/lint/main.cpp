// triad_lint CLI. Exit status: 0 clean, 1 diagnostics, 2 usage/config
// error. Diagnostics print as "file:line: rule: message" on stdout.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] [file...]\n"
         "\n"
         "Lints the repo's C++ sources for determinism/invariant rule\n"
         "violations (R1-R4, R6-R9) and generates the R5 static_assert\n"
         "audit and the R9 metric inventory.\n"
         "\n"
         "  --root DIR           repo root to scan (default: .)\n"
         "  --config FILE        rule config (default: built-in defaults,\n"
         "                       mirrored in tools/lint/lint_rules.toml)\n"
         "  --fix-allowlist      append current diagnostics to the config's\n"
         "                       [allow] baseline instead of failing\n"
         "  --fail-unused-allow  stale [allow] entries fail the run (exit 1)\n"
         "                       instead of printing as notes\n"
         "  --emit-invariants F  write the generated static_assert test to F\n"
         "  --emit-metric-inventory F\n"
         "                       write the R9 metric family inventory to F\n"
         "                       (the committed scripts/prom_families.txt)\n"
         "  --list-files         print the files a tree scan would lint\n"
         "  -q, --quiet          suppress the summary line\n"
         "\n"
         "With explicit files, only those files are linted (paths are\n"
         "interpreted relative to --root for rule targeting); cross-file\n"
         "analyses then see only that subset.\n";
  return 2;
}

std::string read_file(const std::filesystem::path& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = in.good();
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::string emit_path;
  std::string emit_inventory_path;
  bool fix_allowlist = false;
  bool fail_unused_allow = false;
  bool list_files = false;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--config") {
      config_path = value("--config");
    } else if (arg == "--emit-invariants") {
      emit_path = value("--emit-invariants");
    } else if (arg == "--emit-metric-inventory") {
      emit_inventory_path = value("--emit-metric-inventory");
    } else if (arg == "--fix-allowlist") {
      fix_allowlist = true;
    } else if (arg == "--fail-unused-allow") {
      fail_unused_allow = true;
    } else if (arg == "--list-files") {
      list_files = true;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  if (!emit_path.empty()) {
    std::ofstream out(emit_path, std::ios::binary);
    out << triad::lint::invariants_source();
    if (!out) {
      std::cerr << argv[0] << ": cannot write " << emit_path << "\n";
      return 2;
    }
    if (!quiet) std::cerr << "wrote " << emit_path << "\n";
    return 0;
  }

  triad::lint::Config config = triad::lint::default_config();
  std::string config_text;
  if (!config_path.empty()) {
    bool ok = false;
    config_text = read_file(config_path, &ok);
    if (!ok) {
      std::cerr << argv[0] << ": cannot read " << config_path << "\n";
      return 2;
    }
    std::string error;
    if (!triad::lint::parse_config(config_text, &config, &error)) {
      std::cerr << config_path << ": " << error << "\n";
      return 2;
    }
  }

  if (!emit_inventory_path.empty()) {
    const triad::lint::MetricInventory inventory = triad::lint::harvest_metrics(
        triad::lint::read_tree(root, config), config);
    std::ofstream out(emit_inventory_path, std::ios::binary);
    out << triad::lint::render_metric_inventory(inventory);
    if (!out) {
      std::cerr << argv[0] << ": cannot write " << emit_inventory_path << "\n";
      return 2;
    }
    if (!quiet) {
      std::cerr << "wrote " << emit_inventory_path << " ("
                << inventory.size() << " families)\n";
    }
    return 0;
  }

  triad::lint::TreeReport report;
  if (files.empty()) {
    report = triad::lint::lint_tree(root, config);
  } else {
    std::vector<triad::lint::SourceFile> sources;
    for (const std::string& file : files) {
      bool ok = false;
      const std::filesystem::path path =
          std::filesystem::path(file).is_absolute()
              ? std::filesystem::path(file)
              : std::filesystem::path(root) / file;
      std::string content = read_file(path, &ok);
      if (!ok) {
        std::cerr << argv[0] << ": cannot read " << path.string() << "\n";
        return 2;
      }
      const std::string rel =
          std::filesystem::path(file).is_absolute()
              ? std::filesystem::relative(file, root).generic_string()
              : std::filesystem::path(file).generic_string();
      sources.push_back(triad::lint::SourceFile{rel, std::move(content)});
      report.files_scanned.push_back(rel);
    }
    triad::lint::TreeReport filtered = triad::lint::apply_allowlist(
        triad::lint::lint_sources(sources, config), config);
    report.diagnostics = std::move(filtered.diagnostics);
    report.suppressed = std::move(filtered.suppressed);
    // Unused allow entries are only meaningful on full-tree scans.
  }

  if (list_files) {
    for (const std::string& file : report.files_scanned) {
      std::cout << file << "\n";
    }
    return 0;
  }

  if (fix_allowlist) {
    if (config_path.empty()) {
      std::cerr << argv[0] << ": --fix-allowlist needs --config\n";
      return 2;
    }
    const std::string updated =
        triad::lint::add_to_allowlist(config_text, report.diagnostics);
    if (updated != config_text) {
      std::ofstream out(config_path, std::ios::binary);
      out << updated;
      if (!out) {
        std::cerr << argv[0] << ": cannot rewrite " << config_path << "\n";
        return 2;
      }
    }
    if (!quiet) {
      std::cerr << "baselined " << report.diagnostics.size()
                << " diagnostic(s) into " << config_path << "\n";
    }
    return 0;
  }

  for (const triad::lint::Diagnostic& diag : report.diagnostics) {
    std::cout << diag.format() << "\n";
  }
  const bool unused_fail = fail_unused_allow && !report.unused_allows.empty();
  for (const triad::lint::AllowEntry& entry : report.unused_allows) {
    std::cerr << (unused_fail ? "error" : "note")
              << ": unused allowlist entry: " << entry.rule << " "
              << entry.file << " " << entry.token << "\n";
  }
  if (!quiet) {
    std::cerr << "triad_lint: " << report.files_scanned.size() << " file(s), "
              << report.diagnostics.size() << " diagnostic(s), "
              << report.suppressed.size() << " allowlisted, "
              << report.unused_allows.size() << " unused allow(s)\n";
  }
  return (report.diagnostics.empty() && !unused_fail) ? 0 : 1;
}
