// Orchestration: built-in defaults, per-file and tree-wide lint entry
// points. The actual analyses live in rules.cpp (per-file R1–R4, R8)
// and graph.cpp (cross-file R6/R7/R9); reporting plumbing in report.cpp.
#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

#include "graph.h"
#include "lexer.h"
#include "rules.h"

namespace triad::lint {
namespace {

/// R8's watched names for one file are its R1 [allow] syscall tokens:
/// a syscall allowed into a file is automatically return-checked there,
/// so the two lists cannot drift apart.
std::vector<std::string> r8_syscalls_for(const std::string& path,
                                         const Config& cfg) {
  std::vector<std::string> names;
  for (const AllowEntry& entry : cfg.allow) {
    if (entry.rule == "R1" && entry.file == path && entry.token != "*") {
      names.push_back(entry.token);
    }
  }
  return names;
}

void run_file_rules(const std::string& rel_path, const LexOutput& lexed,
                    const Config& config, std::vector<Diagnostic>* diags) {
  check_r1(rel_path, lexed.tokens, config, diags);
  if (in_file_list(rel_path, config.r2_files)) {
    check_r2(rel_path, lexed.tokens, diags);
  }
  if (in_file_list(rel_path, config.r3_files)) {
    check_r3(rel_path, lexed.tokens, diags);
  }
  if (in_file_list(rel_path, config.r4_files)) {
    check_r4(rel_path, lexed.tokens, config, diags);
  }
  if (in_file_list(rel_path, config.r8_files)) {
    check_r8(rel_path, lexed, r8_syscalls_for(rel_path, config), diags);
  }
}

void sort_diags(std::vector<Diagnostic>* diags) {
  std::sort(diags->begin(), diags->end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.token) <
                     std::tie(b.file, b.line, b.rule, b.token);
            });
}

}  // namespace

Config default_config() {
  Config cfg;
  cfg.scan_dirs = {"src", "bench", "examples", "tests", "tools"};
  cfg.exclude_prefixes = {"tests/lint_fixtures/"};
  cfg.r1_banned = {"system_clock",   "steady_clock", "high_resolution_clock",
                   "random_device",  "mt19937",      "mt19937_64",
                   "default_random_engine",          "srand",
                   "rand",           "time",         "getenv",
                   "clock_gettime",  "gettimeofday", "timespec_get",
                   "epoll_create1",  "epoll_wait",   "epoll_ctl",
                   "eventfd",        "recvmmsg",     "sendmmsg",
                   "setsockopt",     "socket",       "listen",
                   "accept4",        "connect"};
  cfg.r1_call_only = {"time", "rand", "getenv", "socket", "listen",
                      "connect"};
  // No blanket layer exemptions: every real-clock binding site is named
  // in [allow] so a new one cannot slip in under a directory prefix.
  cfg.r1_exempt_prefixes = {};
  cfg.r2_files = {"src/obs/export.cpp", "src/obs/forensic.cpp",
                  "src/obs/cluster.cpp", "src/obs/metrics.cpp",
                  "src/campaign/aggregate.cpp", "src/exp/recorder.cpp"};
  cfg.r3_files = {"src/obs/export.cpp", "src/obs/forensic.cpp",
                  "src/obs/cluster.cpp", "src/obs/metrics.cpp",
                  "src/campaign/aggregate.cpp", "src/exp/recorder.cpp",
                  "src/campaign/cli.cpp"};
  cfg.r4_files = {"src/sim/simulation.cpp", "src/net/network.cpp",
                  "src/obs/trace.cpp", "src/runtime/env.cpp",
                  "src/runtime/sim_env.cpp"};
  cfg.r4_banned = {"new",    "malloc",      "calloc",     "realloc",
                   "strdup", "make_unique", "make_shared", "function"};
  // R6 layer map. Longest prefix wins, so file-granular refinements
  // override their directory: the obs substrate headers (metrics/trace/
  // span/prof) are included by every layer and sit with runtime, while
  // the rest of obs (detect/forensic/cluster/export) is forensic-tier
  // above the protocol layers; runtime's environment *binders*
  // (sim_env/cluster_harness/real_env) glue protocol + net + sim
  // together and sit with the apps. Equal ranks may include each other.
  cfg.r6_layers = {
      {"src/util", 0},
      {"src/stats", 0},
      {"src/runtime", 1},
      {"src/obs/metrics.h", 1},
      {"src/obs/trace.h", 1},
      {"src/obs/span.h", 1},
      {"src/obs/prof.h", 1},
      {"src/crypto", 2},
      {"src/net", 2},
      {"src/tsc", 2},
      {"src/sim", 3},
      {"src/triad", 3},
      {"src/ta", 3},
      {"src/ntp", 3},
      {"src/t3e", 3},
      {"src/resilient", 3},
      {"src/enclave", 3},
      {"src/attacks", 3},
      {"src/obs", 4},
      {"src/exp", 5},
      {"src/campaign", 5},
      {"src/timed", 5},
      {"src/apps", 5},
      {"src/runtime/sim_env", 5},
      {"src/runtime/cluster_harness", 5},
      {"src/runtime/real_env", 5},
  };
  cfg.r8_files = {"src/runtime/real_env.cpp"};
  cfg.r9_prefixes = {"triad_", "obs_"};
  cfg.r9_docs = {"DESIGN.md"};
  cfg.r9_inventory = "scripts/prom_families.txt";
  cfg.allow = {
      // The one sanctioned wall-clock binding: MonotonicTimer wraps
      // steady_clock; bench/, profiler, and campaign wall_ms all go
      // through it rather than binding a real clock themselves.
      {"R1", "src/runtime/monotonic_timer.h", "steady_clock"},
      // The one sanctioned ambient-I/O site: RealEnv owns every raw
      // socket/epoll syscall. Entries are named per token so a second
      // binding site (or a new syscall here) must be listed explicitly —
      // no directory blanket. R8 derives its watched-syscall list from
      // these entries.
      {"R1", "src/runtime/real_env.cpp", "socket"},
      {"R1", "src/runtime/real_env.cpp", "setsockopt"},
      {"R1", "src/runtime/real_env.cpp", "recvmmsg"},
      {"R1", "src/runtime/real_env.cpp", "sendmmsg"},
      {"R1", "src/runtime/real_env.cpp", "epoll_create1"},
      {"R1", "src/runtime/real_env.cpp", "epoll_ctl"},
      {"R1", "src/runtime/real_env.cpp", "epoll_wait"},
      {"R1", "src/runtime/real_env.cpp", "eventfd"},
      {"R1", "src/runtime/real_env.cpp", "listen"},
      {"R1", "src/runtime/real_env.cpp", "accept4"},
      {"R1", "src/runtime/real_env.cpp", "connect"},
      // The slab event loop and runtime interfaces traffic in
      // std::function by design (SBO-sized closures, PR 1); R4 still
      // polices raw new/malloc there.
      {"R4", "src/sim/simulation.cpp", "std::function"},
      {"R4", "src/runtime/env.cpp", "std::function"},
      {"R4", "src/obs/trace.cpp", "std::function"},
      // The one sanctioned upward include: SimEnv's packet plane lives
      // in net/, whose delivery scheduling is the sim event loop. The
      // interface split (PR 7's RealEnv work) is tracked in ROADMAP.md.
      {"R6", "src/net/network.h", "sim/simulation.h"},
  };
  return cfg;
}

std::vector<Diagnostic> lint_source(const std::string& rel_path,
                                    std::string_view source,
                                    const Config& config) {
  const LexOutput lexed = lex(source);
  std::vector<Diagnostic> diags;
  run_file_rules(rel_path, lexed, config, &diags);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule, a.token) <
                     std::tie(b.line, b.rule, b.token);
            });
  return diags;
}

std::vector<Diagnostic> lint_sources(const std::vector<SourceFile>& files,
                                     const Config& config) {
  std::vector<LexOutput> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& file : files) lexed.push_back(lex(file.text));
  std::vector<Diagnostic> diags;
  for (std::size_t i = 0; i < files.size(); ++i) {
    run_file_rules(files[i].rel_path, lexed[i], config, &diags);
  }
  check_r6(files, lexed, config, &diags);
  check_r7(files, lexed, &diags);
  check_r9_inventory(harvest_metrics_lexed(files, lexed, config), &diags);
  sort_diags(&diags);
  return diags;
}

MetricInventory harvest_metrics(const std::vector<SourceFile>& files,
                                const Config& config) {
  std::vector<LexOutput> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& file : files) lexed.push_back(lex(file.text));
  return harvest_metrics_lexed(files, lexed, config);
}

std::vector<SourceFile> read_tree(const std::string& root,
                                  const Config& config) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".h", ".hpp", ".cpp",
                                                    ".cc", ".cxx"};
  std::vector<std::string> paths;
  for (const std::string& dir : config.scan_dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      if (kExtensions.count(entry.path().extension().string()) == 0) continue;
      paths.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  for (std::string& rel : paths) {
    if (has_prefix(rel, config.exclude_prefixes)) continue;
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back(SourceFile{std::move(rel), content.str()});
  }
  return files;
}

TreeReport lint_tree(const std::string& root, const Config& config) {
  namespace fs = std::filesystem;
  const std::vector<SourceFile> files = read_tree(root, config);

  std::vector<LexOutput> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& file : files) lexed.push_back(lex(file.text));

  std::vector<Diagnostic> diags;
  for (std::size_t i = 0; i < files.size(); ++i) {
    run_file_rules(files[i].rel_path, lexed[i], config, &diags);
  }
  check_r6(files, lexed, config, &diags);
  check_r7(files, lexed, &diags);

  const MetricInventory inventory =
      harvest_metrics_lexed(files, lexed, config);
  check_r9_inventory(inventory, &diags);
  const auto slurp = [&root](const std::string& rel) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
  };
  std::vector<std::string> doc_texts;
  doc_texts.reserve(config.r9_docs.size());
  for (const std::string& doc : config.r9_docs) doc_texts.push_back(slurp(doc));
  const std::string committed =
      config.r9_inventory.empty() ? std::string() : slurp(config.r9_inventory);
  check_r9_tree(inventory, config, doc_texts, committed, &diags);

  sort_diags(&diags);
  TreeReport report = apply_allowlist(std::move(diags), config);
  report.files_scanned.reserve(files.size());
  for (const SourceFile& file : files) {
    report.files_scanned.push_back(file.rel_path);
  }
  return report;
}

}  // namespace triad::lint
