#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace triad::lint {
namespace {

// --- tokenizer ------------------------------------------------------------
//
// Just enough C++ lexing for rule matching: identifiers, numbers, string
// literals (content retained for R3), and punctuation ("::" and "->"
// merged, everything else single-char). Comments and preprocessor
// directives are skipped; line numbers are preserved throughout.

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        skip_preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '"') {
        tokens.push_back(lex_string());
        continue;
      }
      if (c == '\'') {
        skip_char_literal();
        continue;
      }
      if (ident_start(c)) {
        Token t = lex_identifier();
        // Raw string literal: R"( ... )" (also u8R, uR, UR, LR).
        if (pos_ < src_.size() && src_[pos_] == '"' &&
            (t.text == "R" || t.text == "u8R" || t.text == "uR" ||
             t.text == "UR" || t.text == "LR")) {
          tokens.push_back(lex_raw_string());
        } else {
          tokens.push_back(std::move(t));
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        tokens.push_back(lex_number());
        continue;
      }
      tokens.push_back(lex_punct());
    }
    return tokens;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void skip_preprocessor() {
    // Whole directive, honouring backslash-newline continuations, so
    // `#include <unordered_map>` never feeds rule matching.
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        return;
      }
      ++pos_;
    }
  }

  void skip_line_comment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void skip_block_comment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  Token lex_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string content;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        content += src_[pos_];
        content += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // ill-formed, but keep counting
      content += src_[pos_];
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(content), start_line};
  }

  Token lex_raw_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::string content;
    while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') ++line_;
      content += src_[pos_++];
    }
    pos_ = std::min(src_.size(), pos_ + closer.size());
    return Token{TokKind::kString, std::move(content), start_line};
  }

  void skip_char_literal() {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
  }

  Token lex_identifier() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    return Token{TokKind::kIdent, std::string(src_.substr(start, pos_ - start)),
                 line_};
  }

  Token lex_number() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (ident_char(src_[pos_]) || src_[pos_] == '.' || src_[pos_] == '\'')) {
      ++pos_;
    }
    return Token{TokKind::kNumber,
                 std::string(src_.substr(start, pos_ - start)), line_};
  }

  Token lex_punct() {
    const char c = src_[pos_];
    if (c == ':' && peek(1) == ':') {
      pos_ += 2;
      return Token{TokKind::kPunct, "::", line_};
    }
    if (c == '-' && peek(1) == '>') {
      pos_ += 2;
      return Token{TokKind::kPunct, "->", line_};
    }
    ++pos_;
    return Token{TokKind::kPunct, std::string(1, c), line_};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

// --- path helpers ---------------------------------------------------------

bool has_prefix(const std::string& path, const std::vector<std::string>& set) {
  return std::any_of(set.begin(), set.end(), [&path](const std::string& p) {
    return path.compare(0, p.size(), p) == 0;
  });
}

bool in_file_list(const std::string& path, const std::vector<std::string>& set) {
  return std::any_of(set.begin(), set.end(), [&path](const std::string& p) {
    if (!p.empty() && p.back() == '/') return path.compare(0, p.size(), p) == 0;
    return path == p;
  });
}

// --- rules ----------------------------------------------------------------

void check_r1(const std::string& path, const std::vector<Token>& tokens,
              const Config& cfg, std::vector<Diagnostic>* out) {
  if (has_prefix(path, cfg.r1_exempt_prefixes)) return;
  const std::set<std::string> banned(cfg.r1_banned.begin(), cfg.r1_banned.end());
  const std::set<std::string> call_only(cfg.r1_call_only.begin(),
                                        cfg.r1_call_only.end());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent || banned.count(t.text) == 0) continue;
    if (call_only.count(t.text) != 0) {
      // Only the call form is banned ("time(", "rand(", "getenv(").
      if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
      // "time(" must be the C library function, not a member/local named
      // time: require a preceding "::" (::time / std::time).
      if (t.text == "time" && (i == 0 || tokens[i - 1].text != "::")) continue;
      // A member call (x.rand(), obj->getenv()) is someone else's API.
      if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
        continue;
      }
    }
    out->push_back(Diagnostic{
        "R1", path, t.line, t.text,
        "banned nondeterminism source '" + t.text +
            "' — all time must flow from runtime::Clock and all randomness "
            "from the per-run Rng; wall time only via runtime::MonotonicTimer "
            "(src/runtime/monotonic_timer.h is the sole binding site)"});
  }
}

void check_r2(const std::string& path, const std::vector<Token>& tokens,
              std::vector<Diagnostic>* out) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kIterFns = {"begin",  "end",  "cbegin",
                                                 "cend",   "rbegin", "rend"};
  // Pass 1: names declared with an unordered container type.
  std::set<std::string> declared;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent ||
        kUnorderedTypes.count(tokens[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < tokens.size() && tokens[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">") --depth;
        ++j;
      }
    }
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokKind::kIdent) {
      declared.insert(tokens[j].text);
    }
  }
  const auto flag = [&](const Token& at, const std::string& name) {
    out->push_back(Diagnostic{
        "R2", path, at.line, name,
        "iteration over unordered container '" + name +
            "' in a byte-stable export path — hash order is not part of the "
            "determinism contract; iterate a sorted copy or an ordered "
            "container"});
  };
  // Pass 2a: range-for whose range expression mentions a declared name
  // (or an unordered type directly).
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text != "for" || tokens[i + 1].text != "(") continue;
    std::size_t j = i + 2;
    int depth = 1;
    bool has_semicolon = false;
    std::size_t colon = 0;
    while (j < tokens.size() && depth > 0) {
      if (tokens[j].text == "(") ++depth;
      if (tokens[j].text == ")") --depth;
      if (depth == 1 && tokens[j].text == ";") has_semicolon = true;
      if (depth == 1 && colon == 0 && tokens[j].text == ":") colon = j;
      ++j;
    }
    if (has_semicolon || colon == 0) continue;  // classic for / no range
    for (std::size_t k = colon + 1; k + 1 < j; ++k) {
      if (tokens[k].kind != TokKind::kIdent) continue;
      if (declared.count(tokens[k].text) != 0 ||
          kUnorderedTypes.count(tokens[k].text) != 0) {
        flag(tokens[i], tokens[k].text);
        break;
      }
    }
  }
  // Pass 2b: explicit iterator loops — name.begin() / name.cbegin() ...
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kIdent &&
        declared.count(tokens[i].text) != 0 &&
        (tokens[i + 1].text == "." || tokens[i + 1].text == "->") &&
        kIterFns.count(tokens[i + 2].text) != 0 &&
        tokens[i + 3].text == "(") {
      flag(tokens[i], tokens[i].text);
    }
  }
}

void check_r3(const std::string& path, const std::vector<Token>& tokens,
              std::vector<Diagnostic>* out) {
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kString) continue;
    const std::string& s = t.text;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '%') continue;
      std::size_t j = i + 1;
      if (j < s.size() && s[j] == '%') {
        i = j;
        continue;
      }
      while (j < s.size() && (s[j] == '-' || s[j] == '+' || s[j] == ' ' ||
                              s[j] == '#' || s[j] == '0' || s[j] == '\'')) {
        ++j;
      }
      while (j < s.size() && (std::isdigit(static_cast<unsigned char>(s[j])) ||
                              s[j] == '*')) {
        ++j;
      }
      bool has_precision = false;
      if (j < s.size() && s[j] == '.') {
        has_precision = true;
        ++j;
        while (j < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '*')) {
          ++j;
        }
      }
      while (j < s.size() && (s[j] == 'h' || s[j] == 'l' || s[j] == 'L' ||
                              s[j] == 'q' || s[j] == 'j' || s[j] == 'z' ||
                              s[j] == 't')) {
        ++j;
      }
      if (j < s.size() && !has_precision &&
          (s[j] == 'f' || s[j] == 'F' || s[j] == 'g' || s[j] == 'G' ||
           s[j] == 'e' || s[j] == 'E')) {
        const std::string spec = s.substr(i, j - i + 1);
        out->push_back(Diagnostic{
            "R3", path, t.line, spec,
            "float conversion '" + spec +
                "' without an explicit precision — exported bytes must not "
                "depend on default-precision rounding; use %.9g (or a fixed "
                "%.Nf)"});
      }
      i = j;
    }
  }
}

void check_r4(const std::string& path, const std::vector<Token>& tokens,
              const Config& cfg, std::vector<Diagnostic>* out) {
  const std::set<std::string> banned(cfg.r4_banned.begin(), cfg.r4_banned.end());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent) continue;
    std::string hit;
    if (t.text == "function" && banned.count("function") != 0) {
      if (i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].text == "std") {
        hit = "std::function";
      }
    } else if (banned.count(t.text) != 0 && t.text != "function") {
      // Member calls (allocator.malloc(...)) are someone else's API.
      if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
        continue;
      }
      hit = t.text;
    }
    if (hit.empty()) continue;
    out->push_back(Diagnostic{
        "R4", path, t.line, hit,
        "allocation/type-erasure '" + hit +
            "' in a designated hot-path file — the event/packet path must "
            "stay allocation-lean (see DESIGN.md, runtime layer)"});
  }
}

}  // namespace

std::string Diagnostic::format() const {
  std::ostringstream out;
  out << file << ':' << line << ": " << rule << ": " << message;
  return out.str();
}

Config default_config() {
  Config cfg;
  cfg.scan_dirs = {"src", "bench", "examples", "tests"};
  cfg.exclude_prefixes = {"tests/lint_fixtures/"};
  cfg.r1_banned = {"system_clock",   "steady_clock", "high_resolution_clock",
                   "random_device",  "mt19937",      "mt19937_64",
                   "default_random_engine",          "srand",
                   "rand",           "time",         "getenv",
                   "clock_gettime",  "gettimeofday", "timespec_get",
                   "epoll_create1",  "epoll_wait",   "epoll_ctl",
                   "eventfd",        "recvmmsg",     "sendmmsg",
                   "setsockopt",     "socket",       "listen",
                   "accept4",        "connect"};
  cfg.r1_call_only = {"time", "rand", "getenv", "socket", "listen",
                      "connect"};
  // No blanket layer exemptions: every real-clock binding site is named
  // in [allow] so a new one cannot slip in under a directory prefix.
  cfg.r1_exempt_prefixes = {};
  cfg.r2_files = {"src/obs/export.cpp", "src/obs/forensic.cpp",
                  "src/obs/cluster.cpp", "src/obs/metrics.cpp",
                  "src/campaign/aggregate.cpp", "src/exp/recorder.cpp"};
  cfg.r3_files = {"src/obs/export.cpp", "src/obs/forensic.cpp",
                  "src/obs/cluster.cpp", "src/obs/metrics.cpp",
                  "src/campaign/aggregate.cpp", "src/exp/recorder.cpp",
                  "src/campaign/cli.cpp"};
  cfg.r4_files = {"src/sim/simulation.cpp", "src/net/network.cpp",
                  "src/obs/trace.cpp", "src/runtime/env.cpp",
                  "src/runtime/sim_env.cpp"};
  cfg.r4_banned = {"new",    "malloc",      "calloc",     "realloc",
                   "strdup", "make_unique", "make_shared", "function"};
  cfg.allow = {
      // The one sanctioned wall-clock binding: MonotonicTimer wraps
      // steady_clock; bench/, profiler, and campaign wall_ms all go
      // through it rather than binding a real clock themselves.
      {"R1", "src/runtime/monotonic_timer.h", "steady_clock"},
      // The one sanctioned ambient-I/O site: RealEnv owns every raw
      // socket/epoll syscall. Entries are named per token so a second
      // binding site (or a new syscall here) must be listed explicitly —
      // no directory blanket.
      {"R1", "src/runtime/real_env.cpp", "socket"},
      {"R1", "src/runtime/real_env.cpp", "setsockopt"},
      {"R1", "src/runtime/real_env.cpp", "recvmmsg"},
      {"R1", "src/runtime/real_env.cpp", "sendmmsg"},
      {"R1", "src/runtime/real_env.cpp", "epoll_create1"},
      {"R1", "src/runtime/real_env.cpp", "epoll_ctl"},
      {"R1", "src/runtime/real_env.cpp", "epoll_wait"},
      {"R1", "src/runtime/real_env.cpp", "eventfd"},
      {"R1", "src/runtime/real_env.cpp", "listen"},
      {"R1", "src/runtime/real_env.cpp", "accept4"},
      {"R1", "src/runtime/real_env.cpp", "connect"},
      // The slab event loop and runtime interfaces traffic in
      // std::function by design (SBO-sized closures, PR 1); R4 still
      // polices raw new/malloc there.
      {"R4", "src/sim/simulation.cpp", "std::function"},
      {"R4", "src/runtime/env.cpp", "std::function"},
      {"R4", "src/obs/trace.cpp", "std::function"},
  };
  return cfg;
}

bool parse_config(std::string_view text, Config* config, std::string* error) {
  const auto fail = [error](int line, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + message;
    }
    return false;
  };
  // Strip comments (outside quotes) line by line, keeping line numbers.
  std::vector<std::string> lines;
  {
    std::string current;
    bool quoted = false;
    for (const char c : text) {
      if (c == '\n') {
        lines.push_back(current);
        current.clear();
        quoted = false;
        continue;
      }
      if (c == '"') quoted = !quoted;
      if (c == '#' && !quoted) {
        // comment runs to end of line; keep consuming silently
        current += '\0';  // marker; trimmed below
        continue;
      }
      if (!current.empty() && current.back() == '\0') continue;
      current += c;
    }
    lines.push_back(current);
    for (std::string& l : lines) {
      if (const std::size_t cut = l.find('\0'); cut != std::string::npos) {
        l.erase(cut);
      }
    }
  }

  const auto trim = [](std::string s) {
    const auto is_ws = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
    while (!s.empty() && is_ws(s.front())) s.erase(s.begin());
    while (!s.empty() && is_ws(s.back())) s.pop_back();
    return s;
  };

  std::string section;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    std::string line = trim(lines[n]);
    if (line.empty()) continue;
    const int line_no = static_cast<int>(n) + 1;
    if (line.front() == '[') {
      if (line.back() != ']') return fail(line_no, "unterminated section");
      section = line.substr(1, line.size() - 2);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail(line_no, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    // Arrays may span lines: accumulate until brackets balance.
    const auto bracket_balance = [](const std::string& s) {
      int balance = 0;
      bool quoted = false;
      for (const char c : s) {
        if (c == '"') quoted = !quoted;
        if (quoted) continue;
        if (c == '[') ++balance;
        if (c == ']') --balance;
      }
      return balance;
    };
    while (bracket_balance(value) > 0 && n + 1 < lines.size()) {
      ++n;
      value += ' ';
      value += trim(lines[n]);
    }
    if (bracket_balance(value) != 0) {
      return fail(line_no, "unterminated array for key '" + key + "'");
    }
    // Extract the quoted strings, in order.
    std::vector<std::string> items;
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (value[i] != '"') continue;
      const std::size_t close = value.find('"', i + 1);
      if (close == std::string::npos) {
        return fail(line_no, "unterminated string for key '" + key + "'");
      }
      items.push_back(value.substr(i + 1, close - i - 1));
      i = close;
    }
    const std::string slot = section + "." + key;
    if (slot == "paths.scan") {
      config->scan_dirs = items;
    } else if (slot == "paths.exclude") {
      config->exclude_prefixes = items;
    } else if (slot == "R1.banned") {
      config->r1_banned = items;
    } else if (slot == "R1.call_only") {
      config->r1_call_only = items;
    } else if (slot == "R1.exempt") {
      config->r1_exempt_prefixes = items;
    } else if (slot == "R2.files") {
      config->r2_files = items;
    } else if (slot == "R3.files") {
      config->r3_files = items;
    } else if (slot == "R4.files") {
      config->r4_files = items;
    } else if (slot == "R4.banned") {
      config->r4_banned = items;
    } else if (slot == "allow.entries") {
      config->allow.clear();
      for (const std::string& item : items) {
        std::istringstream fields(item);
        AllowEntry entry;
        if (!(fields >> entry.rule >> entry.file >> entry.token)) {
          return fail(line_no, "allow entry needs '<rule> <file> <token>': '" +
                                   item + "'");
        }
        config->allow.push_back(std::move(entry));
      }
    } else {
      return fail(line_no, "unknown key '" + slot + "'");
    }
  }
  return true;
}

std::vector<Diagnostic> lint_source(const std::string& rel_path,
                                    std::string_view source,
                                    const Config& config) {
  const std::vector<Token> tokens = Lexer(source).run();
  std::vector<Diagnostic> diags;
  check_r1(rel_path, tokens, config, &diags);
  if (in_file_list(rel_path, config.r2_files)) {
    check_r2(rel_path, tokens, &diags);
  }
  if (in_file_list(rel_path, config.r3_files)) {
    check_r3(rel_path, tokens, &diags);
  }
  if (in_file_list(rel_path, config.r4_files)) {
    check_r4(rel_path, tokens, config, &diags);
  }
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule, a.token) <
                     std::tie(b.line, b.rule, b.token);
            });
  return diags;
}

TreeReport apply_allowlist(std::vector<Diagnostic> diagnostics,
                           const Config& config) {
  TreeReport report;
  std::vector<bool> used(config.allow.size(), false);
  for (Diagnostic& diag : diagnostics) {
    bool allowed = false;
    for (std::size_t i = 0; i < config.allow.size(); ++i) {
      const AllowEntry& entry = config.allow[i];
      if (entry.rule == diag.rule && entry.file == diag.file &&
          (entry.token == "*" || entry.token == diag.token)) {
        used[i] = true;
        allowed = true;
        break;
      }
    }
    (allowed ? report.suppressed : report.diagnostics)
        .push_back(std::move(diag));
  }
  for (std::size_t i = 0; i < config.allow.size(); ++i) {
    if (!used[i]) report.unused_allows.push_back(config.allow[i]);
  }
  return report;
}

TreeReport lint_tree(const std::string& root, const Config& config) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".h", ".hpp", ".cpp",
                                                    ".cc", ".cxx"};
  std::vector<std::string> files;
  for (const std::string& dir : config.scan_dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      if (kExtensions.count(entry.path().extension().string()) == 0) continue;
      files.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Diagnostic> diags;
  std::vector<std::string> scanned;
  for (const std::string& rel : files) {
    if (has_prefix(rel, config.exclude_prefixes)) continue;
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    scanned.push_back(rel);
    std::vector<Diagnostic> file_diags =
        lint_source(rel, content.str(), config);
    diags.insert(diags.end(), std::make_move_iterator(file_diags.begin()),
                 std::make_move_iterator(file_diags.end()));
  }
  TreeReport report = apply_allowlist(std::move(diags), config);
  report.files_scanned = std::move(scanned);
  return report;
}

std::string add_to_allowlist(std::string_view config_text,
                             const std::vector<Diagnostic>& diagnostics) {
  // Dedup new entries against each other and against existing ones.
  Config parsed = default_config();
  std::string error;
  parse_config(config_text, &parsed, &error);  // best effort
  std::set<std::string> existing;
  for (const AllowEntry& entry : parsed.allow) {
    existing.insert(entry.rule + " " + entry.file + " " + entry.token);
  }
  std::vector<std::string> additions;
  for (const Diagnostic& diag : diagnostics) {
    const std::string entry = diag.rule + " " + diag.file + " " + diag.token;
    if (existing.insert(entry).second) additions.push_back(entry);
  }
  if (additions.empty()) return std::string(config_text);

  std::string text(config_text);
  std::string block;
  for (const std::string& entry : additions) {
    block += "  \"" + entry + "\",\n";
  }
  const std::size_t section = text.find("[allow]");
  if (section == std::string::npos) {
    if (!text.empty() && text.back() != '\n') text += '\n';
    return text + "\n[allow]\nentries = [\n" + block + "]\n";
  }
  const std::size_t open = text.find('[', text.find('=', section));
  const std::size_t close = text.find(']', open + 1);
  if (open == std::string::npos || close == std::string::npos) {
    return text + "\n# triad_lint --fix-allowlist could not parse [allow]\n";
  }
  // Insert just before the closing bracket, on its own line.
  std::size_t insert_at = text.rfind('\n', close);
  insert_at = insert_at == std::string::npos ? close : insert_at + 1;
  text.insert(insert_at, block);
  return text;
}

std::string invariants_source() {
  return R"cpp(// GENERATED by `triad_lint --emit-invariants`; do not edit.
//
// Compile-time audit of the binary-layout and packing invariants the
// observability layer's byte-stability claims depend on (rule R5).
// A failed static_assert fails the *build*, not just the lint run.
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "obs/span.h"
#include "obs/trace.h"
#include "util/types.h"

namespace triad::obs {

// TraceEvent is persisted through memcpy-style ring storage and decoded
// field-by-field by the JSONL round-trip; its layout is load-bearing.
static_assert(sizeof(TraceEvent) == 56,
              "TraceEvent grew or shrank: ring capacity math, emission "
              "cost, and the 'span fills the padding hole' claim all "
              "assume the 56-byte layout");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay a POD: RingTraceSink stores it by "
              "value with no per-event allocation");
static_assert(std::is_standard_layout_v<TraceEvent>,
              "TraceEvent must stay standard-layout for offsetof audits");
static_assert(offsetof(TraceEvent, at) == 0, "at must lead the record");
static_assert(offsetof(TraceEvent, type) == 8, "type follows the stamp");
static_assert(offsetof(TraceEvent, node) == 12, "node at the 4-byte slot");
static_assert(offsetof(TraceEvent, peer) == 16, "peer after node");
static_assert(offsetof(TraceEvent, span) == 20,
              "span must sit in the former padding hole before a — moving "
              "it changes emission cost");
static_assert(offsetof(TraceEvent, a) == 24 && offsetof(TraceEvent, b) == 32,
              "integer payload slots are 8-aligned");
static_assert(offsetof(TraceEvent, x) == 40 && offsetof(TraceEvent, y) == 48,
              "double payload slots trail the record");

// SpanId packing: node address in the low bits, per-node sequence above.
static_assert(std::is_same_v<SpanId, std::uint32_t>,
              "SpanId must stay 32-bit: it rides inside sealed protocol "
              "messages at fixed width");
static_assert(kSpanNodeBits == 10,
              "span packing is part of the trace wire format");
static_assert(make_span_id(3, 7) == ((7u << 10) | 3u),
              "make_span_id packs seq above the node address");
static_assert(span_node(make_span_id(1023, 1)) == 1023,
              "span_node must round-trip the widest address");
static_assert(span_seq(make_span_id(5, 4194303u)) == 4194303u,
              "span_seq must round-trip the widest sequence");
static_assert(make_span_id(0, 0) == 0, "seq 0 on node 0 is 'no span'");

// Scalar contracts the whole codebase assumes.
static_assert(std::is_same_v<SimTime, std::int64_t>,
              "SimTime is signed 64-bit nanoseconds");
static_assert(std::is_same_v<NodeId, std::uint32_t>,
              "NodeId width is part of TraceEvent's layout");
static_assert(seconds(1) == 1'000'000'000, "SimTime unit is nanoseconds");

}  // namespace triad::obs

int main() { return 0; }
)cpp";
}

}  // namespace triad::lint
