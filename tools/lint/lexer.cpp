#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace triad::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexOutput run() {
    LexOutput out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        skip_preprocessor(&out);
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        out.comment_lines.insert(line_);
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment(&out);
        continue;
      }
      if (c == '"') {
        out.tokens.push_back(lex_string());
        continue;
      }
      if (c == '\'') {
        skip_char_literal();
        continue;
      }
      if (ident_start(c)) {
        Token t = lex_identifier();
        // Raw string literal: R"( ... )" (also u8R, uR, UR, LR).
        if (pos_ < src_.size() && src_[pos_] == '"' &&
            (t.text == "R" || t.text == "u8R" || t.text == "uR" ||
             t.text == "UR" || t.text == "LR")) {
          out.tokens.push_back(lex_raw_string());
        } else {
          out.tokens.push_back(std::move(t));
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        out.tokens.push_back(lex_number());
        continue;
      }
      out.tokens.push_back(lex_punct());
    }
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void skip_preprocessor(LexOutput* out) {
    // Whole directive, honouring backslash-newline continuations, so
    // `#include <unordered_map>` never feeds rule matching. Quoted
    // includes are captured for the R6 layering graph.
    const int directive_line = line_;
    std::string body;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        break;
      }
      body += src_[pos_];
      ++pos_;
    }
    // body is e.g. `#include "obs/metrics.h"  // comment`.
    std::size_t i = 1;  // past '#'
    while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
    if (body.compare(i, 7, "include") != 0) return;
    i += 7;
    while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
    if (i >= body.size() || body[i] != '"') return;
    const std::size_t close = body.find('"', i + 1);
    if (close == std::string::npos) return;
    out->includes.push_back(
        IncludeDirective{body.substr(i + 1, close - i - 1), directive_line});
  }

  void skip_line_comment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void skip_block_comment(LexOutput* out) {
    out->comment_lines.insert(line_);
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        out->comment_lines.insert(line_);
      }
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  Token lex_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string content;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        content += src_[pos_];
        content += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // ill-formed, but keep counting
      content += src_[pos_];
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(content), start_line};
  }

  Token lex_raw_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::string content;
    while (pos_ < src_.size() &&
           src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') ++line_;
      content += src_[pos_++];
    }
    pos_ = std::min(src_.size(), pos_ + closer.size());
    return Token{TokKind::kString, std::move(content), start_line};
  }

  void skip_char_literal() {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
  }

  Token lex_identifier() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    return Token{TokKind::kIdent,
                 std::string(src_.substr(start, pos_ - start)), line_};
  }

  Token lex_number() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (ident_char(src_[pos_]) || src_[pos_] == '.' ||
            src_[pos_] == '\'')) {
      ++pos_;
    }
    return Token{TokKind::kNumber,
                 std::string(src_.substr(start, pos_ - start)), line_};
  }

  Token lex_punct() {
    const char c = src_[pos_];
    if (c == ':' && peek(1) == ':') {
      pos_ += 2;
      return Token{TokKind::kPunct, "::", line_};
    }
    if (c == '-' && peek(1) == '>') {
      pos_ += 2;
      return Token{TokKind::kPunct, "->", line_};
    }
    ++pos_;
    return Token{TokKind::kPunct, std::string(1, c), line_};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

LexOutput lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace triad::lint
