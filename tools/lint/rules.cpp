#include "rules.h"

#include <algorithm>
#include <set>

namespace triad::lint {

bool has_prefix(const std::string& path, const std::vector<std::string>& set) {
  return std::any_of(set.begin(), set.end(), [&path](const std::string& p) {
    return path.compare(0, p.size(), p) == 0;
  });
}

bool in_file_list(const std::string& path,
                  const std::vector<std::string>& set) {
  return std::any_of(set.begin(), set.end(), [&path](const std::string& p) {
    if (!p.empty() && p.back() == '/') return path.compare(0, p.size(), p) == 0;
    return path == p;
  });
}

void check_r1(const std::string& path, const std::vector<Token>& tokens,
              const Config& cfg, std::vector<Diagnostic>* out) {
  if (has_prefix(path, cfg.r1_exempt_prefixes)) return;
  const std::set<std::string> banned(cfg.r1_banned.begin(),
                                     cfg.r1_banned.end());
  const std::set<std::string> call_only(cfg.r1_call_only.begin(),
                                        cfg.r1_call_only.end());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent || banned.count(t.text) == 0) continue;
    if (call_only.count(t.text) != 0) {
      // Only the call form is banned ("time(", "rand(", "getenv(").
      if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
      // "time(" must be the C library function, not a member/local named
      // time: require a preceding "::" (::time / std::time).
      if (t.text == "time" && (i == 0 || tokens[i - 1].text != "::")) continue;
      // A member call (x.rand(), obj->getenv()) is someone else's API.
      if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
        continue;
      }
    }
    out->push_back(Diagnostic{
        "R1", path, t.line, t.text,
        "banned nondeterminism source '" + t.text +
            "' — all time must flow from runtime::Clock and all randomness "
            "from the per-run Rng; wall time only via runtime::MonotonicTimer "
            "(src/runtime/monotonic_timer.h is the sole binding site)"});
  }
}

void check_r2(const std::string& path, const std::vector<Token>& tokens,
              std::vector<Diagnostic>* out) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kIterFns = {"begin",  "end",  "cbegin",
                                                 "cend",   "rbegin", "rend"};
  // Pass 1: names declared with an unordered container type.
  std::set<std::string> declared;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent ||
        kUnorderedTypes.count(tokens[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < tokens.size() && tokens[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">") --depth;
        ++j;
      }
    }
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokKind::kIdent) {
      declared.insert(tokens[j].text);
    }
  }
  const auto flag = [&](const Token& at, const std::string& name) {
    out->push_back(Diagnostic{
        "R2", path, at.line, name,
        "iteration over unordered container '" + name +
            "' in a byte-stable export path — hash order is not part of the "
            "determinism contract; iterate a sorted copy or an ordered "
            "container"});
  };
  // Pass 2a: range-for whose range expression mentions a declared name
  // (or an unordered type directly).
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text != "for" || tokens[i + 1].text != "(") continue;
    std::size_t j = i + 2;
    int depth = 1;
    bool has_semicolon = false;
    std::size_t colon = 0;
    while (j < tokens.size() && depth > 0) {
      if (tokens[j].text == "(") ++depth;
      if (tokens[j].text == ")") --depth;
      if (depth == 1 && tokens[j].text == ";") has_semicolon = true;
      if (depth == 1 && colon == 0 && tokens[j].text == ":") colon = j;
      ++j;
    }
    if (has_semicolon || colon == 0) continue;  // classic for / no range
    for (std::size_t k = colon + 1; k + 1 < j; ++k) {
      if (tokens[k].kind != TokKind::kIdent) continue;
      if (declared.count(tokens[k].text) != 0 ||
          kUnorderedTypes.count(tokens[k].text) != 0) {
        flag(tokens[i], tokens[k].text);
        break;
      }
    }
  }
  // Pass 2b: explicit iterator loops — name.begin() / name.cbegin() ...
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kIdent &&
        declared.count(tokens[i].text) != 0 &&
        (tokens[i + 1].text == "." || tokens[i + 1].text == "->") &&
        kIterFns.count(tokens[i + 2].text) != 0 &&
        tokens[i + 3].text == "(") {
      flag(tokens[i], tokens[i].text);
    }
  }
}

void check_r3(const std::string& path, const std::vector<Token>& tokens,
              std::vector<Diagnostic>* out) {
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kString) continue;
    const std::string& s = t.text;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '%') continue;
      std::size_t j = i + 1;
      if (j < s.size() && s[j] == '%') {
        i = j;
        continue;
      }
      while (j < s.size() && (s[j] == '-' || s[j] == '+' || s[j] == ' ' ||
                              s[j] == '#' || s[j] == '0' || s[j] == '\'')) {
        ++j;
      }
      while (j < s.size() && (std::isdigit(static_cast<unsigned char>(s[j])) ||
                              s[j] == '*')) {
        ++j;
      }
      bool has_precision = false;
      if (j < s.size() && s[j] == '.') {
        has_precision = true;
        ++j;
        while (j < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[j])) ||
                s[j] == '*')) {
          ++j;
        }
      }
      while (j < s.size() && (s[j] == 'h' || s[j] == 'l' || s[j] == 'L' ||
                              s[j] == 'q' || s[j] == 'j' || s[j] == 'z' ||
                              s[j] == 't')) {
        ++j;
      }
      if (j < s.size() && !has_precision &&
          (s[j] == 'f' || s[j] == 'F' || s[j] == 'g' || s[j] == 'G' ||
           s[j] == 'e' || s[j] == 'E')) {
        const std::string spec = s.substr(i, j - i + 1);
        out->push_back(Diagnostic{
            "R3", path, t.line, spec,
            "float conversion '" + spec +
                "' without an explicit precision — exported bytes must not "
                "depend on default-precision rounding; use %.9g (or a fixed "
                "%.Nf)"});
      }
      i = j;
    }
  }
}

void check_r4(const std::string& path, const std::vector<Token>& tokens,
              const Config& cfg, std::vector<Diagnostic>* out) {
  const std::set<std::string> banned(cfg.r4_banned.begin(),
                                     cfg.r4_banned.end());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent) continue;
    std::string hit;
    if (t.text == "function" && banned.count("function") != 0) {
      if (i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].text == "std") {
        hit = "std::function";
      }
    } else if (banned.count(t.text) != 0 && t.text != "function") {
      // Member calls (allocator.malloc(...)) are someone else's API.
      if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
        continue;
      }
      hit = t.text;
    }
    if (hit.empty()) continue;
    out->push_back(Diagnostic{
        "R4", path, t.line, hit,
        "allocation/type-erasure '" + hit +
            "' in a designated hot-path file — the event/packet path must "
            "stay allocation-lean (see DESIGN.md, runtime layer)"});
  }
}

void check_r8(const std::string& path, const LexOutput& lexed,
              const std::vector<std::string>& syscalls,
              std::vector<Diagnostic>* out) {
  const std::set<std::string> watched(syscalls.begin(), syscalls.end());
  const std::vector<Token>& tokens = lexed.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent || watched.count(t.text) == 0) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
      continue;  // member call: someone else's API
    }
    // Previous significant token, looking through a qualifying "::".
    std::size_t p = i;
    if (p > 0 && tokens[p - 1].text == "::") --p;
    if (p == 0) continue;  // file starts with the call — no statement context
    const std::string& prev = tokens[p - 1].text;
    const auto flag = [&](const std::string& why) {
      out->push_back(Diagnostic{
          "R8", path, t.line, t.text,
          "unchecked syscall return from '" + t.text + "' — " + why +
              "; assign/compare the result or cast to (void) with a "
              "same-line comment naming why discarding is safe"});
    };
    if (prev == ";" || prev == "{" || prev == "}" || prev == "else" ||
        prev == "do") {
      flag("the result is discarded");
      continue;
    }
    if (prev == ")") {
      const bool void_cast = p >= 3 && tokens[p - 2].text == "void" &&
                             tokens[p - 3].text == "(";
      if (void_cast) {
        if (lexed.comment_lines.count(t.line) == 0) {
          flag("(void) cast without a named reason");
        }
        continue;
      }
      // `if (cond) syscall(...)` / `while (cond) syscall(...)`: the call
      // is a bare statement whose result still vanishes.
      flag("the result is discarded");
      continue;
    }
    // Anything else — '=', '(', ',', 'return', '!', comparison, a
    // declaration type — consumes the value.
  }
}

}  // namespace triad::lint
