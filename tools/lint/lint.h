// triad_lint — repo-aware determinism/invariant linter.
//
// Every reproducibility claim this repo makes (byte-identical traces,
// jobs-1/4/8-identical campaign aggregates, offline==online detector
// verdicts) rests on source-level conventions: all time via
// runtime::Clock, all randomness via the per-run Rng, no
// unordered-container iteration in exported paths, fixed-precision float
// formatting, allocation-free hot paths. This tool checks those
// conventions statically — a tokenizer-level scanner, not a compiler
// plugin, because the container only ships g++ (no libclang).
//
// Rules (see tools/lint/lint_rules.toml for the repo-specific targets):
//   R1  banned nondeterminism identifiers (system_clock, rand(), ...);
//       no layer is blanket-exempt — each real binding site (today only
//       runtime::MonotonicTimer) is a named [allow] entry;
//   R2  no range-for / .begin() iteration over unordered_map/set in
//       byte-stable export/aggregate/forensic files;
//   R3  no %f/%g/%e printf conversions without an explicit precision in
//       exporter/report files (the %.9g byte-stability rule);
//   R4  no raw new/malloc/std::function construction in designated
//       hot-path files;
//   R5  compile-time invariant audit — invariants_source() emits a
//       static_assert file (TraceEvent layout, SpanId packing) that is
//       compiled as a test, so drift fails the build, not just the lint.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace triad::lint {

struct Diagnostic {
  std::string rule;     // "R1".."R4"
  std::string file;     // repo-relative, forward slashes
  int line = 0;         // 1-based
  std::string token;    // offending token (allowlist key)
  std::string message;  // human-readable explanation

  /// "file:line: rule: message" — the format the ctest entry greps.
  [[nodiscard]] std::string format() const;
};

/// One allowlist entry: "<rule> <file> <token>", token "*" matches any.
struct AllowEntry {
  std::string rule;
  std::string file;
  std::string token;
};

struct Config {
  // Directories scanned (repo-relative) and path prefixes excluded.
  std::vector<std::string> scan_dirs;
  std::vector<std::string> exclude_prefixes;

  // R1: banned identifiers; call_only ones additionally require a
  // following "(" ("time" also requires a preceding "::").
  std::vector<std::string> r1_banned;
  std::vector<std::string> r1_call_only;
  std::vector<std::string> r1_exempt_prefixes;

  // R2/R3/R4 apply only to these files (repo-relative paths).
  std::vector<std::string> r2_files;
  std::vector<std::string> r3_files;
  std::vector<std::string> r4_files;
  std::vector<std::string> r4_banned;

  std::vector<AllowEntry> allow;
};

/// Built-in defaults mirroring lint_rules.toml (used when no config file
/// is given, and by the fixture tests).
[[nodiscard]] Config default_config();

/// Parses the lint_rules.toml subset (sections, string/array values,
/// # comments). Returns false and sets *error on malformed input.
/// Parsed values *replace* the corresponding defaults in *config.
bool parse_config(std::string_view text, Config* config, std::string* error);

/// Lints one translation unit. `rel_path` selects which rules apply.
/// Diagnostics are sorted by (line, rule); allowlist is NOT applied here.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& rel_path,
                                                  std::string_view source,
                                                  const Config& config);

struct TreeReport {
  std::vector<Diagnostic> diagnostics;     // after allowlist filtering
  std::vector<Diagnostic> suppressed;      // matched an allow entry
  std::vector<AllowEntry> unused_allows;   // stale baseline entries
  std::vector<std::string> files_scanned;  // sorted repo-relative paths
};

/// Walks config.scan_dirs under `root`, lints every C++ source, applies
/// the allowlist. Deterministic: files are visited in sorted path order.
[[nodiscard]] TreeReport lint_tree(const std::string& root,
                                   const Config& config);

/// Applies the allowlist to raw diagnostics (exposed for tests).
[[nodiscard]] TreeReport apply_allowlist(std::vector<Diagnostic> diagnostics,
                                         const Config& config);

/// R5: the generated static_assert translation unit (compiled as
/// tests/lint_invariants_test by the build).
[[nodiscard]] std::string invariants_source();

/// Inserts allowlist entries for `diagnostics` into config file text
/// (creating the [allow] section if absent) and returns the new text.
[[nodiscard]] std::string add_to_allowlist(
    std::string_view config_text, const std::vector<Diagnostic>& diagnostics);

}  // namespace triad::lint
