// triad_lint — repo-aware determinism/invariant linter.
//
// Every reproducibility claim this repo makes (byte-identical traces,
// jobs-1/4/8-identical campaign aggregates, offline==online detector
// verdicts) rests on source-level conventions: all time via
// runtime::Clock, all randomness via the per-run Rng, no
// unordered-container iteration in exported paths, fixed-precision float
// formatting, allocation-free hot paths. This tool checks those
// conventions statically — a tokenizer-level scanner, not a compiler
// plugin, because the container only ships g++ (no libclang).
//
// Since PR 10 it is a small multi-pass analyzer (lexer / rules / graph /
// report units): per-file token rules plus cross-file analyses over the
// whole scanned tree.
//
// Rules (see tools/lint/lint_rules.toml for the repo-specific targets):
//   R1  banned nondeterminism identifiers (system_clock, rand(), ...);
//       no layer is blanket-exempt — each real binding site (today only
//       runtime::MonotonicTimer) is a named [allow] entry;
//   R2  no range-for / .begin() iteration over unordered_map/set in
//       byte-stable export/aggregate/forensic files;
//   R3  no %f/%g/%e printf conversions without an explicit precision in
//       exporter/report files (the %.9g byte-stability rule);
//   R4  no raw new/malloc/std::function construction in designated
//       hot-path files;
//   R5  compile-time invariant audit — invariants_source() emits a
//       static_assert file (TraceEvent layout, SpanId packing) that is
//       compiled as a test, so drift fails the build, not just the lint;
//   R6  include-graph layering: the repo-wide include DAG must respect
//       util < runtime < crypto/net < protocol layers < obs < apps (see
//       DESIGN.md §2.4 for the refined map), with cycle detection;
//   R7  constructor init-list order: no initializer may read a member
//       declared after the one being initialized;
//   R8  unchecked syscall returns in the R8-targeted files: every
//       R1-allowlisted syscall's return value must be consumed, or cast
//       to (void) with a same-line comment naming why;
//   R9  metric family inventory: every family registered via the obs
//       Registry across src/ is harvested into a generated inventory
//       (scripts/prom_families.txt) that check_prom.awk and the
//       DESIGN.md catalogue are validated against.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace triad::lint {

struct Diagnostic {
  std::string rule;     // "R1".."R9" (no R5: that rule is generated code)
  std::string file;     // repo-relative, forward slashes
  int line = 0;         // 1-based
  std::string token;    // offending token (allowlist key)
  std::string message;  // human-readable explanation

  /// "file:line: rule: message" — the format the ctest entry greps.
  [[nodiscard]] std::string format() const;
};

/// One allowlist entry: "<rule> <file> <token>", token "*" matches any.
struct AllowEntry {
  std::string rule;
  std::string file;
  std::string token;
};

/// One R6 layer assignment: any path starting with `prefix` has `rank`;
/// the longest matching prefix wins, so file-granular refinements can
/// override their directory (e.g. obs/metrics.h is substrate while the
/// rest of obs/ is forensic-tier).
struct LayerEntry {
  std::string prefix;
  int rank = 0;
};

struct Config {
  // Directories scanned (repo-relative) and path prefixes excluded.
  std::vector<std::string> scan_dirs;
  std::vector<std::string> exclude_prefixes;

  // R1: banned identifiers; call_only ones additionally require a
  // following "(" ("time" also requires a preceding "::").
  std::vector<std::string> r1_banned;
  std::vector<std::string> r1_call_only;
  std::vector<std::string> r1_exempt_prefixes;

  // R2/R3/R4 apply only to these files (repo-relative paths).
  std::vector<std::string> r2_files;
  std::vector<std::string> r3_files;
  std::vector<std::string> r4_files;
  std::vector<std::string> r4_banned;

  // R6: the layer map (empty disables the rule).
  std::vector<LayerEntry> r6_layers;

  // R8 applies to these files; the watched syscall names are derived
  // from the R1 [allow] entries for each file, so the two lists cannot
  // drift apart (a syscall allowed into a file is automatically
  // return-checked there).
  std::vector<std::string> r8_files;

  // R9: family-name prefixes harvested (e.g. "triad_", "obs_"), the
  // documentation files every family must appear in, and the committed
  // generated inventory file (empty disables the drift check).
  std::vector<std::string> r9_prefixes;
  std::vector<std::string> r9_docs;
  std::string r9_inventory;

  std::vector<AllowEntry> allow;
};

/// Built-in defaults mirroring lint_rules.toml (used when no config file
/// is given, and by the fixture tests).
[[nodiscard]] Config default_config();

/// Parses the lint_rules.toml subset (sections, string/array values,
/// # comments). Returns false and sets *error on malformed input.
/// Parsed values *replace* the corresponding defaults in *config.
bool parse_config(std::string_view text, Config* config, std::string* error);

/// One in-memory source file for lint_sources/harvest_metrics. rel_path
/// is repo-relative with forward slashes; it selects which rules apply.
struct SourceFile {
  std::string rel_path;
  std::string text;
};

/// Lints one translation unit with the per-file rules only (R1–R4, R8).
/// Diagnostics are sorted by (line, rule); allowlist is NOT applied here.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& rel_path,
                                                  std::string_view source,
                                                  const Config& config);

/// Lints a set of sources together: per-file rules plus the cross-file
/// analyses (R6 layering/cycles, R7 ctor init order, R9 inventory
/// conflicts). Diagnostics are sorted by (file, line, rule, token);
/// allowlist is NOT applied here.
[[nodiscard]] std::vector<Diagnostic> lint_sources(
    const std::vector<SourceFile>& files, const Config& config);

struct TreeReport {
  std::vector<Diagnostic> diagnostics;     // after allowlist filtering
  std::vector<Diagnostic> suppressed;      // matched an allow entry
  std::vector<AllowEntry> unused_allows;   // stale baseline entries
  std::vector<std::string> files_scanned;  // sorted repo-relative paths
};

/// Reads every lintable file under config.scan_dirs (sorted path order,
/// exclusions applied). Exposed so --emit-metric-inventory and the tests
/// share lint_tree's exact file set.
[[nodiscard]] std::vector<SourceFile> read_tree(const std::string& root,
                                                const Config& config);

/// Walks config.scan_dirs under `root`, lints every C++ source with all
/// rules (including R9's doc/inventory cross-checks, which read the
/// [R9] docs and inventory files under `root`), applies the allowlist.
/// Deterministic: files are visited in sorted path order.
[[nodiscard]] TreeReport lint_tree(const std::string& root,
                                   const Config& config);

/// Applies the allowlist to raw diagnostics (exposed for tests).
[[nodiscard]] TreeReport apply_allowlist(std::vector<Diagnostic> diagnostics,
                                         const Config& config);

// --- R9 metric inventory ---------------------------------------------------

/// One registration/help site of a metric family.
struct MetricSite {
  std::string file;
  int line = 0;
  std::string kind;  // "counter" | "gauge" | "histogram" | "" (set_help)
};

struct MetricFamily {
  /// Kinds seen across registration sites (>1 is an R9 conflict).
  std::set<std::string> kinds;
  /// Literal label values per label key; "*" marks a site whose value
  /// is computed at runtime (non-literal).
  std::map<std::string, std::set<std::string>> labels;
  bool registered = false;  // any non-set_help site
  bool has_help = false;    // any set_help site
  std::vector<MetricSite> sites;
};

/// family name -> facts, ordered by name (deterministic render).
using MetricInventory = std::map<std::string, MetricFamily>;

/// Harvests every metric family registered via the obs Registry across
/// the given sources (only rel_paths under src/ participate): counter /
/// gauge / histogram / counter_fn / gauge_fn / set_help calls, plus the
/// node-stats `count(...)` helper idiom. The family is the first string
/// literal in the call matching an [R9] prefix.
[[nodiscard]] MetricInventory harvest_metrics(
    const std::vector<SourceFile>& files, const Config& config);

/// Renders the inventory in the committed scripts/prom_families.txt
/// format: sorted `<kind> <family> [label=v1|v2...]` lines under a
/// generated-file header. Byte-stable.
[[nodiscard]] std::string render_metric_inventory(
    const MetricInventory& inventory);

// ---------------------------------------------------------------------------

/// R5: the generated static_assert translation unit (compiled as
/// tests/lint_invariants_test by the build).
[[nodiscard]] std::string invariants_source();

/// Inserts allowlist entries for `diagnostics` into config file text
/// (creating the [allow] section if absent) and returns the new text.
[[nodiscard]] std::string add_to_allowlist(
    std::string_view config_text, const std::vector<Diagnostic>& diagnostics);

}  // namespace triad::lint
