#include "report.h"

#include <set>
#include <sstream>
#include <vector>

namespace triad::lint {

std::string Diagnostic::format() const {
  std::ostringstream out;
  out << file << ':' << line << ": " << rule << ": " << message;
  return out.str();
}

bool parse_config(std::string_view text, Config* config, std::string* error) {
  const auto fail = [error](int line, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + message;
    }
    return false;
  };
  // Strip comments (outside quotes) line by line, keeping line numbers.
  std::vector<std::string> lines;
  {
    std::string current;
    bool quoted = false;
    for (const char c : text) {
      if (c == '\n') {
        lines.push_back(current);
        current.clear();
        quoted = false;
        continue;
      }
      if (c == '"') quoted = !quoted;
      if (c == '#' && !quoted) {
        // comment runs to end of line; keep consuming silently
        current += '\0';  // marker; trimmed below
        continue;
      }
      if (!current.empty() && current.back() == '\0') continue;
      current += c;
    }
    lines.push_back(current);
    for (std::string& l : lines) {
      if (const std::size_t cut = l.find('\0'); cut != std::string::npos) {
        l.erase(cut);
      }
    }
  }

  const auto trim = [](std::string s) {
    const auto is_ws = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
    while (!s.empty() && is_ws(s.front())) s.erase(s.begin());
    while (!s.empty() && is_ws(s.back())) s.pop_back();
    return s;
  };

  std::string section;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    std::string line = trim(lines[n]);
    if (line.empty()) continue;
    const int line_no = static_cast<int>(n) + 1;
    if (line.front() == '[') {
      if (line.back() != ']') return fail(line_no, "unterminated section");
      section = line.substr(1, line.size() - 2);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail(line_no, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    // Arrays may span lines: accumulate until brackets balance.
    const auto bracket_balance = [](const std::string& s) {
      int balance = 0;
      bool quoted = false;
      for (const char c : s) {
        if (c == '"') quoted = !quoted;
        if (quoted) continue;
        if (c == '[') ++balance;
        if (c == ']') --balance;
      }
      return balance;
    };
    while (bracket_balance(value) > 0 && n + 1 < lines.size()) {
      ++n;
      value += ' ';
      value += trim(lines[n]);
    }
    if (bracket_balance(value) != 0) {
      return fail(line_no, "unterminated array for key '" + key + "'");
    }
    // Extract the quoted strings, in order.
    std::vector<std::string> items;
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (value[i] != '"') continue;
      const std::size_t close = value.find('"', i + 1);
      if (close == std::string::npos) {
        return fail(line_no, "unterminated string for key '" + key + "'");
      }
      items.push_back(value.substr(i + 1, close - i - 1));
      i = close;
    }
    const std::string slot = section + "." + key;
    if (slot == "paths.scan") {
      config->scan_dirs = items;
    } else if (slot == "paths.exclude") {
      config->exclude_prefixes = items;
    } else if (slot == "R1.banned") {
      config->r1_banned = items;
    } else if (slot == "R1.call_only") {
      config->r1_call_only = items;
    } else if (slot == "R1.exempt") {
      config->r1_exempt_prefixes = items;
    } else if (slot == "R2.files") {
      config->r2_files = items;
    } else if (slot == "R3.files") {
      config->r3_files = items;
    } else if (slot == "R4.files") {
      config->r4_files = items;
    } else if (slot == "R4.banned") {
      config->r4_banned = items;
    } else if (slot == "R6.layers") {
      config->r6_layers.clear();
      for (const std::string& item : items) {
        const std::size_t space = item.rfind(' ');
        LayerEntry entry;
        if (space == std::string::npos || space + 1 >= item.size()) {
          return fail(line_no,
                      "layer entry needs '<prefix> <rank>': '" + item + "'");
        }
        entry.prefix = item.substr(0, space);
        try {
          entry.rank = std::stoi(item.substr(space + 1));
        } catch (...) {
          return fail(line_no,
                      "layer entry needs '<prefix> <rank>': '" + item + "'");
        }
        config->r6_layers.push_back(std::move(entry));
      }
    } else if (slot == "R8.files") {
      config->r8_files = items;
    } else if (slot == "R9.prefixes") {
      config->r9_prefixes = items;
    } else if (slot == "R9.docs") {
      config->r9_docs = items;
    } else if (slot == "R9.inventory") {
      if (items.size() != 1) {
        return fail(line_no, "R9.inventory takes exactly one path");
      }
      config->r9_inventory = items.front();
    } else if (slot == "allow.entries") {
      config->allow.clear();
      for (const std::string& item : items) {
        std::istringstream fields(item);
        AllowEntry entry;
        if (!(fields >> entry.rule >> entry.file >> entry.token)) {
          return fail(line_no, "allow entry needs '<rule> <file> <token>': '" +
                                   item + "'");
        }
        config->allow.push_back(std::move(entry));
      }
    } else {
      return fail(line_no, "unknown key '" + slot + "'");
    }
  }
  return true;
}

TreeReport apply_allowlist(std::vector<Diagnostic> diagnostics,
                           const Config& config) {
  TreeReport report;
  std::vector<bool> used(config.allow.size(), false);
  for (Diagnostic& diag : diagnostics) {
    bool allowed = false;
    for (std::size_t i = 0; i < config.allow.size(); ++i) {
      const AllowEntry& entry = config.allow[i];
      if (entry.rule == diag.rule && entry.file == diag.file &&
          (entry.token == "*" || entry.token == diag.token)) {
        used[i] = true;
        allowed = true;
        break;
      }
    }
    (allowed ? report.suppressed : report.diagnostics)
        .push_back(std::move(diag));
  }
  for (std::size_t i = 0; i < config.allow.size(); ++i) {
    if (!used[i]) report.unused_allows.push_back(config.allow[i]);
  }
  return report;
}

std::string add_to_allowlist(std::string_view config_text,
                             const std::vector<Diagnostic>& diagnostics) {
  // Dedup new entries against each other and against existing ones.
  Config parsed = default_config();
  std::string error;
  parse_config(config_text, &parsed, &error);  // best effort
  std::set<std::string> existing;
  for (const AllowEntry& entry : parsed.allow) {
    existing.insert(entry.rule + " " + entry.file + " " + entry.token);
  }
  std::vector<std::string> additions;
  for (const Diagnostic& diag : diagnostics) {
    const std::string entry = diag.rule + " " + diag.file + " " + diag.token;
    if (existing.insert(entry).second) additions.push_back(entry);
  }
  if (additions.empty()) return std::string(config_text);

  std::string text(config_text);
  std::string block;
  for (const std::string& entry : additions) {
    block += "  \"" + entry + "\",\n";
  }
  const std::size_t section = text.find("[allow]");
  if (section == std::string::npos) {
    if (!text.empty() && text.back() != '\n') text += '\n';
    return text + "\n[allow]\nentries = [\n" + block + "]\n";
  }
  const std::size_t open = text.find('[', text.find('=', section));
  const std::size_t close = text.find(']', open + 1);
  if (open == std::string::npos || close == std::string::npos) {
    return text + "\n# triad_lint --fix-allowlist could not parse [allow]\n";
  }
  // Insert just before the closing bracket, on its own line.
  std::size_t insert_at = text.rfind('\n', close);
  insert_at = insert_at == std::string::npos ? close : insert_at + 1;
  text.insert(insert_at, block);
  return text;
}

std::string invariants_source() {
  return R"cpp(// GENERATED by `triad_lint --emit-invariants`; do not edit.
//
// Compile-time audit of the binary-layout and packing invariants the
// observability layer's byte-stability claims depend on (rule R5).
// A failed static_assert fails the *build*, not just the lint run.
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "obs/span.h"
#include "obs/trace.h"
#include "util/types.h"

namespace triad::obs {

// TraceEvent is persisted through memcpy-style ring storage and decoded
// field-by-field by the JSONL round-trip; its layout is load-bearing.
static_assert(sizeof(TraceEvent) == 56,
              "TraceEvent grew or shrank: ring capacity math, emission "
              "cost, and the 'span fills the padding hole' claim all "
              "assume the 56-byte layout");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay a POD: RingTraceSink stores it by "
              "value with no per-event allocation");
static_assert(std::is_standard_layout_v<TraceEvent>,
              "TraceEvent must stay standard-layout for offsetof audits");
static_assert(offsetof(TraceEvent, at) == 0, "at must lead the record");
static_assert(offsetof(TraceEvent, type) == 8, "type follows the stamp");
static_assert(offsetof(TraceEvent, node) == 12, "node at the 4-byte slot");
static_assert(offsetof(TraceEvent, peer) == 16, "peer after node");
static_assert(offsetof(TraceEvent, span) == 20,
              "span must sit in the former padding hole before a — moving "
              "it changes emission cost");
static_assert(offsetof(TraceEvent, a) == 24 && offsetof(TraceEvent, b) == 32,
              "integer payload slots are 8-aligned");
static_assert(offsetof(TraceEvent, x) == 40 && offsetof(TraceEvent, y) == 48,
              "double payload slots trail the record");

// SpanId packing: node address in the low bits, per-node sequence above.
static_assert(std::is_same_v<SpanId, std::uint32_t>,
              "SpanId must stay 32-bit: it rides inside sealed protocol "
              "messages at fixed width");
static_assert(kSpanNodeBits == 10,
              "span packing is part of the trace wire format");
static_assert(make_span_id(3, 7) == ((7u << 10) | 3u),
              "make_span_id packs seq above the node address");
static_assert(span_node(make_span_id(1023, 1)) == 1023,
              "span_node must round-trip the widest address");
static_assert(span_seq(make_span_id(5, 4194303u)) == 4194303u,
              "span_seq must round-trip the widest sequence");
static_assert(make_span_id(0, 0) == 0, "seq 0 on node 0 is 'no span'");

// Scalar contracts the whole codebase assumes.
static_assert(std::is_same_v<SimTime, std::int64_t>,
              "SimTime is signed 64-bit nanoseconds");
static_assert(std::is_same_v<NodeId, std::uint32_t>,
              "NodeId width is part of TraceEvent's layout");
static_assert(seconds(1) == 1'000'000'000, "SimTime unit is nanoseconds");

}  // namespace triad::obs

int main() { return 0; }
)cpp";
}

}  // namespace triad::lint
