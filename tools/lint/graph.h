// Cross-file analyses: these see the whole scanned tree at once, not one
// translation unit.
//   R6  include-graph layering + cycle detection;
//   R7  constructor init-list order against declared member order;
//   R9  metric family inventory harvested from obs Registry calls.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace triad::lint {

/// R6: for every quoted include between two *layered* files (both paths
/// match a [R6] layer prefix; longest prefix wins), flag edges that point
/// UP the layer order (rank(target) > rank(source)), and any include
/// cycle among scanned files. Includes are resolved relative to the
/// including file's directory, then against "src/<path>", then verbatim.
/// The diagnostic token is the include string as written, so allow
/// entries name the exact edge ("R6 src/net/network.h sim/simulation.h").
void check_r6(const std::vector<SourceFile>& files,
              const std::vector<LexOutput>& lexed, const Config& cfg,
              std::vector<Diagnostic>* out);

/// R7: harvests every class/struct definition's member declaration order
/// tree-wide, then checks every constructor initializer list (in-class
/// and out-of-line `C::C(...) : ...`): an initializer expression that
/// reads a member declared *after* the member being initialized is
/// flagged — members initialize in declaration order, so the read sees
/// an unconstructed object (the PR 9 TelemetryServer error_/listener_
/// bug, which -Wreorder does not catch). Lambda bodies inside
/// initializer expressions are skipped: deferred execution is not an
/// initialization-order hazard. Classes whose name is defined more than
/// once with differing member lists are skipped as ambiguous.
void check_r7(const std::vector<SourceFile>& files,
              const std::vector<LexOutput>& lexed,
              std::vector<Diagnostic>* out);

/// R9 harvest over already-lexed sources (only files under src/
/// participate). The public harvest_metrics() in lint.h wraps this.
[[nodiscard]] MetricInventory harvest_metrics_lexed(
    const std::vector<SourceFile>& files, const std::vector<LexOutput>& lexed,
    const Config& cfg);

/// R9 per-inventory diagnostics that need no external text: a family
/// registered under conflicting kinds, and a set_help() for a family
/// never registered (orphan help).
void check_r9_inventory(const MetricInventory& inventory,
                        std::vector<Diagnostic>* out);

/// R9 cross-checks that need tree context: every family must appear in
/// each documentation file named by [R9] docs (catalogue drift), and the
/// committed inventory file must byte-match the rendered one (run
/// `triad_lint --emit-metric-inventory` to regenerate). `doc_texts` and
/// `committed` are the file contents, empty string = file missing.
void check_r9_tree(const MetricInventory& inventory, const Config& cfg,
                   const std::vector<std::string>& doc_texts,
                   const std::string& committed,
                   std::vector<Diagnostic>* out);

}  // namespace triad::lint
