// triad_lint lexer — just enough C++ lexing for rule matching.
//
// Identifiers, numbers, string literals (content retained for R3), and
// punctuation ("::" and "->" merged, everything else single-char).
// Comments and preprocessor directives are skipped from the token
// stream, but two side channels survive for the cross-file rules:
//   - quoted `#include "..."` directives with their line numbers (R6
//     builds the repo include DAG from them);
//   - the set of lines carrying a comment (R8's "(void) cast needs a
//     named reason" check asks whether the cast line has one).
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace triad::lint {

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

/// One `#include "path"` directive (angle-bracket includes are system
/// headers and never participate in the repo layering graph).
struct IncludeDirective {
  std::string path;  // as written, e.g. "obs/metrics.h"
  int line = 0;
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::set<int> comment_lines;  // every line touched by // or /* */
};

/// Tokenizes one translation unit. Never fails: ill-formed input just
/// yields fewer/odd tokens, which is fine for lint matching.
[[nodiscard]] LexOutput lex(std::string_view source);

}  // namespace triad::lint
