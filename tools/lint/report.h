// Reporting plumbing shared by the CLI and tests: diagnostic
// formatting, the lint_rules.toml subset parser, allowlist application,
// --fix-allowlist rewriting, and the generated R5 invariants unit. The
// public declarations live in lint.h; this header only exists so the
// implementation files agree on what lives where.
#pragma once

#include "lint.h"
