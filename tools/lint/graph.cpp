#include "graph.h"

#include <algorithm>
#include <map>
#include <set>

#include "rules.h"

namespace triad::lint {
namespace {

/// Returns the index just past the token matching the opener at `i`
/// (toks[i] must equal `open`). Unbalanced input returns toks.size() —
/// callers treat that as "statement runs to end of file" and stop.
std::size_t skip_matched(const std::vector<Token>& toks, std::size_t i,
                         const char* open, const char* close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == open) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

// --- R6: include-graph layering -------------------------------------------

/// Longest matching [R6] prefix wins; -1 = unlayered (no constraints).
int rank_of(const std::string& path, const Config& cfg) {
  int best_len = -1;
  int best_rank = -1;
  for (const LayerEntry& e : cfg.r6_layers) {
    if (path.compare(0, e.prefix.size(), e.prefix) != 0) continue;
    if (static_cast<int>(e.prefix.size()) > best_len) {
      best_len = static_cast<int>(e.prefix.size());
      best_rank = e.rank;
    }
  }
  return best_rank;
}

/// Resolves an include string to a scanned file: relative to the
/// including file's directory first (tools/lint/main.cpp includes
/// "lint.h"), then against src/ (the repo's -I root: "obs/metrics.h"),
/// then verbatim. Empty string = not a scanned repo file.
std::string resolve_include(const std::string& from, const std::string& inc,
                            const std::set<std::string>& known) {
  const std::size_t slash = from.rfind('/');
  if (slash != std::string::npos) {
    const std::string local = from.substr(0, slash + 1) + inc;
    if (known.count(local) != 0) return local;
  }
  const std::string under_src = "src/" + inc;
  if (known.count(under_src) != 0) return under_src;
  if (known.count(inc) != 0) return inc;
  return {};
}

// --- R7: class member order -----------------------------------------------

/// Identifiers that can never be a data-member name even when the token
/// shape matches (e.g. `bool operator==(...)` puts "operator" before
/// "=", and a trailing return type puts a type name before ";").
bool member_name_blocked(const std::string& t) {
  static const std::set<std::string> kBlocked = {
      "operator", "const",    "constexpr", "noexcept", "override", "final",
      "delete",   "default",  "void",      "int",      "bool",     "char",
      "auto",     "double",   "float",     "long",     "short",    "unsigned",
      "signed",   "this",     "nullptr",   "true",     "false",    "mutable",
      "volatile", "decltype", "sizeof",    "return"};
  return kBlocked.count(t) != 0;
}

/// Harvests every named class/struct definition's data members, in
/// declaration order. Same name defined twice with different member
/// lists (e.g. two `Config` structs in different namespaces) lands in
/// `ambiguous` and is skipped by the ctor check.
void harvest_classes(const std::vector<Token>& toks,
                     std::map<std::string, std::vector<std::string>>* classes,
                     std::set<std::string>* ambiguous) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "class" && toks[i].text != "struct")) {
      continue;
    }
    if (i > 0 && toks[i - 1].text == "enum") continue;  // enum class
    std::size_t j = i + 1;
    while (j + 1 < toks.size() && toks[j].text == "[" &&
           toks[j + 1].text == "[") {
      j = skip_matched(toks, j, "[", "]");  // [[attribute]]
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    const std::string name = toks[j].text;
    ++j;
    if (j < toks.size() && toks[j].text == "final") ++j;
    if (j < toks.size() && toks[j].text == ":") {
      // Base clause: runs to the body brace (template args may nest <>).
      ++j;
      int angle = 0;
      while (j < toks.size()) {
        if (toks[j].text == "<") ++angle;
        else if (toks[j].text == ">") --angle;
        else if (angle <= 0 && (toks[j].text == "{" || toks[j].text == ";"))
          break;
        ++j;
      }
    }
    // Anything else ("class T>" in a template head, "class Foo;") is not
    // a definition.
    if (j >= toks.size() || toks[j].text != "{") continue;

    std::vector<std::string> members;
    std::size_t k = j + 1;
    while (k < toks.size() && toks[k].text != "}") {
      if (toks[k].kind == TokKind::kIdent &&
          (toks[k].text == "public" || toks[k].text == "private" ||
           toks[k].text == "protected") &&
          k + 1 < toks.size() && toks[k + 1].text == ":") {
        k += 2;
        continue;
      }
      if (toks[k].text == ";") {
        ++k;
        continue;
      }
      // One declaration at class-body depth. Statements that cannot
      // declare a data member (nested types, usings, statics, the
      // class's own ctors/dtor) are traversed without recording.
      bool record = true;
      {
        static const std::set<std::string> kSpecifiers = {
            "explicit", "constexpr", "inline", "virtual"};
        static const std::set<std::string> kNoMember = {
            "static", "using", "typedef", "friend", "template",
            "enum",   "class", "struct",  "union"};
        std::size_t f = k;
        while (f < toks.size() && toks[f].kind == TokKind::kIdent &&
               kSpecifiers.count(toks[f].text) != 0) {
          ++f;
        }
        if (f < toks.size() &&
            ((toks[f].kind == TokKind::kIdent &&
              (kNoMember.count(toks[f].text) != 0 || toks[f].text == name)) ||
             toks[f].text == "~")) {
          record = false;
        }
      }
      std::string candidate;
      std::size_t cand_at = 0;
      bool after_eq = false;
      while (k < toks.size()) {
        const std::string& tx = toks[k].text;
        if (tx == "}") break;  // class body closes mid-statement
        if (tx == "(") {
          k = skip_matched(toks, k, "(", ")");
          continue;
        }
        if (tx == "[") {
          k = skip_matched(toks, k, "[", "]");
          continue;
        }
        if (tx == ";") {
          ++k;
          break;
        }
        if (tx == "{") {
          // Brace-init (`std::atomic<u32> x_{0};`) iff the brace follows
          // the candidate just recorded; otherwise it is a function or
          // nested-type body and the statement ends with it.
          const bool brace_init =
              !after_eq && !candidate.empty() && cand_at + 1 == k;
          k = skip_matched(toks, k, "{", "}");
          if (!brace_init && !after_eq) {
            if (k < toks.size() && toks[k].text == ";") ++k;
            break;
          }
          continue;
        }
        if (tx == "=") {
          after_eq = true;
          ++k;
          continue;
        }
        if (tx == "->") record = false;  // trailing return type follows
        if (record && !after_eq && toks[k].kind == TokKind::kIdent &&
            !member_name_blocked(tx) && k + 1 < toks.size()) {
          const std::string& nx = toks[k + 1].text;
          if (nx == ";" || nx == "=" || nx == "{" || nx == "[") {
            candidate = tx;
            cand_at = k;
          }
        }
        ++k;
      }
      if (!candidate.empty()) members.push_back(candidate);
    }

    const auto it = classes->find(name);
    if (it == classes->end()) {
      (*classes)[name] = std::move(members);
    } else if (it->second != members) {
      ambiguous->insert(name);
    }
  }
}

void check_ctors(const SourceFile& file, const std::vector<Token>& toks,
                 const std::map<std::string, std::vector<std::string>>& classes,
                 const std::set<std::string>& ambiguous,
                 std::vector<Diagnostic>* out) {
  // Tokens that can precede a ctor name in a class body; call
  // expressions (prev '=', ',', 'return', ...) never match, and the
  // out-of-line form requires the `C::C(` shape.
  static const std::set<std::string> kInClassPrev = {
      ";",      "{",       "}",         ":",     ">",
      "public", "private", "protected", "explicit", "constexpr", "inline"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const auto cls = classes.find(toks[i].text);
    if (cls == classes.end() || ambiguous.count(toks[i].text) != 0) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    const bool out_of_line = i >= 2 && toks[i - 1].text == "::" &&
                             toks[i - 2].text == toks[i].text;
    const bool in_class =
        i == 0 || kInClassPrev.count(toks[i - 1].text) != 0;
    if (!out_of_line && !in_class) continue;

    std::size_t j = skip_matched(toks, i + 1, "(", ")");
    while (j < toks.size() && toks[j].text == "noexcept") {
      ++j;
      if (j < toks.size() && toks[j].text == "(") {
        j = skip_matched(toks, j, "(", ")");
      }
    }
    if (j >= toks.size() || toks[j].text != ":") continue;
    ++j;

    const std::vector<std::string>& members = cls->second;
    const auto member_index = [&members](const std::string& n) {
      for (std::size_t x = 0; x < members.size(); ++x) {
        if (members[x] == n) return static_cast<int>(x);
      }
      return -1;
    };

    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
      if (toks[j].kind != TokKind::kIdent) {
        ++j;
        continue;
      }
      const std::string m = toks[j].text;
      ++j;
      if (j >= toks.size() || (toks[j].text != "(" && toks[j].text != "{")) {
        continue;
      }
      const bool paren = toks[j].text == "(";
      const std::size_t end = paren ? skip_matched(toks, j, "(", ")")
                                    : skip_matched(toks, j, "{", "}");
      const int m_idx = member_index(m);  // -1: base-class initializer
      if (m_idx >= 0) {
        for (std::size_t e = j + 1; e + 1 < end; ++e) {
          // A lambda in an initializer defers execution — by call time
          // every member is constructed — so its body is skipped.
          if (toks[e].text == "[" &&
              !(toks[e - 1].kind == TokKind::kIdent ||
                toks[e - 1].text == ")" || toks[e - 1].text == "]")) {
            std::size_t l = skip_matched(toks, e, "[", "]");
            if (l < end && toks[l].text == "(") {
              l = skip_matched(toks, l, "(", ")");
            }
            if (l < end && toks[l].text == "{") {
              l = skip_matched(toks, l, "{", "}");
            }
            e = l - 1;
            continue;
          }
          if (toks[e].kind != TokKind::kIdent) continue;
          if (toks[e - 1].text == "." || toks[e - 1].text == "->" ||
              toks[e - 1].text == "::") {
            continue;  // member of some other object / qualified name
          }
          if (member_index(toks[e].text) > m_idx) {
            out->push_back(Diagnostic{
                "R7", file.rel_path, toks[e].line, toks[e].text,
                "constructor initializer for '" + m + "' reads member '" +
                    toks[e].text + "' declared later in " + toks[i].text +
                    " — members initialize in declaration order, so '" +
                    toks[e].text +
                    "' is not yet constructed here (the PR 9 "
                    "TelemetryServer error_/listener_ bug class, which "
                    "-Wreorder does not catch); reorder the declarations "
                    "or drop the dependency"});
          }
        }
      }
      j = end;
    }
  }
}

// --- R9: metric inventory --------------------------------------------------

/// "" = not a registration ident.
std::string metric_kind(const std::string& ident) {
  if (ident == "counter" || ident == "counter_fn" || ident == "count") {
    return "counter";
  }
  if (ident == "gauge" || ident == "gauge_fn") return "gauge";
  if (ident == "histogram") return "histogram";
  return {};
}

bool family_name_matches(const std::string& s, const Config& cfg) {
  for (const std::string& prefix : cfg.r9_prefixes) {
    if (s.size() <= prefix.size() ||
        s.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const bool clean = std::all_of(s.begin(), s.end(), [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    });
    if (clean) return true;
  }
  return false;
}

}  // namespace

void check_r6(const std::vector<SourceFile>& files,
              const std::vector<LexOutput>& lexed, const Config& cfg,
              std::vector<Diagnostic>* out) {
  if (cfg.r6_layers.empty()) return;
  std::set<std::string> known;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < files.size(); ++i) {
    known.insert(files[i].rel_path);
    index_of[files[i].rel_path] = i;
  }
  struct Edge {
    std::size_t target;
    const IncludeDirective* inc;
  };
  std::vector<std::vector<Edge>> adj(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const int source_rank = rank_of(files[i].rel_path, cfg);
    for (const IncludeDirective& inc : lexed[i].includes) {
      const std::string target =
          resolve_include(files[i].rel_path, inc.path, known);
      if (target.empty()) continue;
      adj[i].push_back(Edge{index_of.at(target), &inc});
      const int target_rank = rank_of(target, cfg);
      if (source_rank >= 0 && target_rank >= 0 && target_rank > source_rank) {
        out->push_back(Diagnostic{
            "R6", files[i].rel_path, inc.line, inc.path,
            "layering violation: '" + files[i].rel_path + "' (layer " +
                std::to_string(source_rank) + ") includes '" + target +
                "' (layer " + std::to_string(target_rank) +
                ") — includes must point down the layer order util < "
                "runtime/substrate < crypto/net < protocol < obs < apps "
                "(see DESIGN.md §2.4); invert the dependency or add a "
                "named [allow] entry"});
      }
    }
  }
  // Cycle detection: any back edge in a DFS over the include graph.
  // Deterministic: files are visited in sorted path order, edges in
  // include order.
  std::vector<int> color(files.size(), 0);  // 0 white, 1 gray, 2 black
  struct Frame {
    std::size_t node;
    std::size_t edge;
  };
  for (std::size_t s = 0; s < files.size(); ++s) {
    if (color[s] != 0) continue;
    std::vector<Frame> stack{{s, 0}};
    color[s] = 1;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      if (fr.edge < adj[fr.node].size()) {
        const Edge& edge = adj[fr.node][fr.edge++];
        if (color[edge.target] == 0) {
          color[edge.target] = 1;
          stack.push_back(Frame{edge.target, 0});
        } else if (color[edge.target] == 1) {
          out->push_back(Diagnostic{
              "R6", files[fr.node].rel_path, edge.inc->line, edge.inc->path,
              "include cycle: '" + files[fr.node].rel_path +
                  "' includes '" + files[edge.target].rel_path +
                  "' which (transitively) includes it back — break the "
                  "cycle with a forward declaration or an interface "
                  "split"});
        }
      } else {
        color[fr.node] = 2;
        stack.pop_back();
      }
    }
  }
}

void check_r7(const std::vector<SourceFile>& files,
              const std::vector<LexOutput>& lexed,
              std::vector<Diagnostic>* out) {
  std::map<std::string, std::vector<std::string>> classes;
  std::set<std::string> ambiguous;
  for (const LexOutput& lx : lexed) {
    harvest_classes(lx.tokens, &classes, &ambiguous);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    check_ctors(files[i], lexed[i].tokens, classes, ambiguous, out);
  }
}

MetricInventory harvest_metrics_lexed(const std::vector<SourceFile>& files,
                                      const std::vector<LexOutput>& lexed,
                                      const Config& cfg) {
  MetricInventory inv;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::string& path = files[f].rel_path;
    if (path.compare(0, 4, "src/") != 0) continue;
    const std::vector<Token>& toks = lexed[f].tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const bool is_help = toks[i].text == "set_help";
      const std::string kind = metric_kind(toks[i].text);
      if (kind.empty() && !is_help) continue;
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      if (toks[i].text == "count" && i > 0 &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
           toks[i - 1].text == "::")) {
        continue;  // std::set::count etc. — the helper idiom is a bare call
      }
      const std::size_t end = skip_matched(toks, i + 1, "(", ")");
      // Family = first string literal in the call matching an [R9] prefix.
      std::string family;
      for (std::size_t a = i + 2; a + 1 < end; ++a) {
        if (toks[a].kind == TokKind::kString &&
            family_name_matches(toks[a].text, cfg)) {
          family = toks[a].text;
          break;
        }
      }
      if (family.empty()) continue;  // helper body passing a variable name
      MetricFamily& fam = inv[family];
      fam.sites.push_back(MetricSite{path, toks[i].line, kind});
      if (is_help) {
        fam.has_help = true;
      } else {
        fam.registered = true;
        fam.kinds.insert(kind);
        // Literal label pairs: { "key", "value" }; a computed value
        // ({"node", id}) records "*".
        for (std::size_t a = i + 2; a + 2 < end; ++a) {
          if (toks[a].text != "{" || toks[a + 1].kind != TokKind::kString ||
              toks[a + 2].text != ",") {
            continue;
          }
          const std::string& key = toks[a + 1].text;
          if (a + 4 < end && toks[a + 3].kind == TokKind::kString &&
              toks[a + 4].text == "}") {
            fam.labels[key].insert(toks[a + 3].text);
          } else {
            fam.labels[key].insert("*");
          }
        }
      }
    }
  }
  return inv;
}

void check_r9_inventory(const MetricInventory& inventory,
                        std::vector<Diagnostic>* out) {
  for (const auto& [name, fam] : inventory) {
    if (fam.kinds.size() > 1) {
      // First registered kind wins; every site of a different kind is a
      // conflict diagnostic.
      std::string first_kind;
      for (const MetricSite& site : fam.sites) {
        if (site.kind.empty()) continue;
        if (first_kind.empty()) {
          first_kind = site.kind;
          continue;
        }
        if (site.kind != first_kind) {
          out->push_back(Diagnostic{
              "R9", site.file, site.line, name,
              "metric family '" + name + "' re-registered as " + site.kind +
                  " but first registered as " + first_kind +
                  " — a family has exactly one kind across the tree "
                  "(Prometheus TYPE lines and check_prom.awk both assume "
                  "it)"});
        }
      }
    }
    if (fam.has_help && !fam.registered) {
      for (const MetricSite& site : fam.sites) {
        if (!site.kind.empty()) continue;
        out->push_back(Diagnostic{
            "R9", site.file, site.line, name,
            "set_help for metric family '" + name +
                "' which is never registered — orphan help text means the "
                "family was renamed or removed; delete the set_help or "
                "register the family"});
        break;
      }
    }
  }
}

void check_r9_tree(const MetricInventory& inventory, const Config& cfg,
                   const std::vector<std::string>& doc_texts,
                   const std::string& committed,
                   std::vector<Diagnostic>* out) {
  for (std::size_t d = 0; d < cfg.r9_docs.size(); ++d) {
    const std::string& doc = cfg.r9_docs[d];
    const std::string& text = d < doc_texts.size() ? doc_texts[d] : "";
    if (text.empty()) {
      out->push_back(Diagnostic{
          "R9", doc, 1, "missing",
          "metric catalogue file '" + doc +
              "' is missing or empty — the [R9] docs list expects every "
              "registered family to be documented there"});
      continue;
    }
    for (const auto& [name, fam] : inventory) {
      if (!fam.registered) continue;
      if (text.find(name) == std::string::npos) {
        out->push_back(Diagnostic{
            "R9", doc, 1, name,
            "metric family '" + name + "' (first registered at " +
                fam.sites.front().file + ":" +
                std::to_string(fam.sites.front().line) +
                ") is not documented in " + doc +
                " — add it to the metric catalogue"});
      }
    }
  }
  if (!cfg.r9_inventory.empty()) {
    const std::string rendered = render_metric_inventory(inventory);
    if (committed != rendered) {
      out->push_back(Diagnostic{
          "R9", cfg.r9_inventory, 1, "stale",
          "committed metric inventory does not match the tree — "
          "regenerate with `triad_lint --emit-metric-inventory " +
              cfg.r9_inventory + "`"});
    }
  }
}

std::string render_metric_inventory(const MetricInventory& inventory) {
  std::string out =
      "# GENERATED by `triad_lint --emit-metric-inventory`; do not edit.\n"
      "# Every metric family registered via the obs Registry across src/.\n"
      "# Format: <kind> <family> [<label>=<v1|v2|...>]...  (* = runtime "
      "value)\n";
  for (const auto& [name, fam] : inventory) {
    if (!fam.registered) continue;
    std::string line;
    for (const std::string& kind : fam.kinds) {
      line += line.empty() ? kind : "|" + kind;
    }
    line += " " + name;
    for (const auto& [key, values] : fam.labels) {
      line += " " + key + "=";
      bool first = true;
      for (const std::string& v : values) {
        if (!first) line += "|";
        line += v;
        first = false;
      }
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace triad::lint
