// bench_diff core: compare triad-bench-v1 documents against a baseline
// and flag median regressions past a threshold. Library-shaped so
// bench_harness_test can drive the exact code the CLI runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace triad::tools {

class JsonValue;

/// One benchmark entry pulled out of a triad-bench-v1 document.
struct BenchEntry {
  std::string suite;
  std::string name;
  double median_ns = 0.0;
  double p95_ns = 0.0;
  double min_ns = 0.0;
};

/// Parses a triad-bench-v1 document. Throws std::runtime_error on a
/// schema violation (wrong schema tag, missing keys).
std::vector<BenchEntry> load_bench_document(const JsonValue& doc);

/// Reads and parses one BENCH file. Throws on I/O or schema errors.
std::vector<BenchEntry> load_bench_file(const std::string& path);

enum class DiffStatus {
  kOk,          // within threshold (includes improvements)
  kRegression,  // current median worse than baseline by > threshold
  kMissing,     // in baseline but absent from current
  kNew,         // in current but absent from baseline
};

struct DiffRow {
  std::string name;  // "suite/bench" fully qualified
  DiffStatus status = DiffStatus::kOk;
  double baseline_median_ns = 0.0;
  double current_median_ns = 0.0;
  double delta_pct = 0.0;  // +12.5 = 12.5% slower than baseline
};

struct DiffOptions {
  double threshold_pct = 10.0;  // fail past this much slower
  bool require_all = false;     // missing entries fail instead of warn
};

struct DiffReport {
  std::vector<DiffRow> rows;  // baseline order, then new entries
  /// Exit code under `options`: 0 clean, 1 regression (or missing
  /// entries when require_all).
  [[nodiscard]] int exit_code(const DiffOptions& options) const;
};

/// Compares current entries (the union of every --current file) against
/// the baseline. Duplicate names across current files keep the last.
DiffReport diff_benchmarks(const std::vector<BenchEntry>& baseline,
                           const std::vector<BenchEntry>& current,
                           const DiffOptions& options);

/// Human-readable table, one row per benchmark, worst offenders marked.
void write_diff_table(const DiffReport& report, const DiffOptions& options,
                      std::ostream& out);

}  // namespace triad::tools
