// bench_diff: the perf gate. Compares BENCH_*.json files produced by
// the bench harness against a committed baseline and exits nonzero on a
// median regression past the threshold.
//
//   bench_diff [--threshold PCT] [--require-all] BASELINE CURRENT...
//   bench_diff --merge OUT.json CURRENT...   (concatenate suites into
//                                             one baseline document)
//
// Multiple CURRENT files are unioned (the committed BENCH_micro.json
// baseline holds both micro suites; each bench binary emits one file).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "diff.h"

namespace {

using namespace triad::tools;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold PCT] [--metric median_ns] "
               "[--require-all] BASELINE CURRENT...\n"
               "       %s --merge OUT.json CURRENT...\n",
               argv0, argv0);
  return 2;
}

// Re-emits the raw "benchmarks" entries of several documents as one
// triad-bench-v1 document whose suite is "merged" and whose benchmark
// names are "suite/name" qualified — the format the committed baseline
// uses so one file can gate several bench binaries.
int merge_documents(const std::string& out_path,
                    const std::vector<std::string>& paths) {
  std::ostringstream benches;
  std::string fingerprint_block;
  bool first = true;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    JsonValue doc;
    std::string error;
    if (!parse_json(text.str(), &doc, &error)) {
      std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    const std::string& suite = doc.at("suite").as_string();
    if (first) {
      // Keep the first file's fingerprint verbatim (same machine for
      // every suite in one merge).
      const std::string& raw = text.str();
      const auto start = raw.find("\"fingerprint\"");
      const auto end = raw.find("},", start);
      if (start != std::string::npos && end != std::string::npos) {
        fingerprint_block = raw.substr(start, end - start + 1);
      }
    }
    (void)load_bench_document(doc);  // schema check (throws on violation)
    // Re-serialize each entry with the qualified name, preserving the
    // numeric fields at %.9g via the parsed values.
    for (const JsonValue& bench : doc.at("benchmarks").as_array()) {
      char buf[1024];
      std::snprintf(
          buf, sizeof(buf),
          "%s    {\n"
          "      \"name\": \"%s/%s\",\n"
          "      \"iterations\": %.0f,\n"
          "      \"repetitions\": %.0f,\n"
          "      \"min_ns\": %.9g,\n"
          "      \"median_ns\": %.9g,\n"
          "      \"p95_ns\": %.9g,\n"
          "      \"mean_ns\": %.9g,\n"
          "      \"stddev_ns\": %.9g,\n"
          "      \"bytes_per_second\": %.9g,\n"
          "      \"items_per_second\": %.9g\n"
          "    }",
          first ? "\n" : ",\n", suite.c_str(),
          bench.at("name").as_string().c_str(),
          bench.at("iterations").as_number(),
          bench.at("repetitions").as_number(),
          bench.at("min_ns").as_number(), bench.at("median_ns").as_number(),
          bench.at("p95_ns").as_number(), bench.at("mean_ns").as_number(),
          bench.at("stddev_ns").as_number(),
          bench.at("bytes_per_second").as_number(),
          bench.at("items_per_second").as_number());
      benches << buf;
      first = false;
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_diff: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"schema\": \"triad-bench-v1\",\n  \"suite\": \"merged\",\n  ";
  if (!fingerprint_block.empty()) out << fingerprint_block << ",\n  ";
  out << "\"benchmarks\": [" << benches.str() << "\n  ]\n}\n";
  std::printf("merged %zu file(s) into %s\n", paths.size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DiffOptions options;
  std::string merge_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--threshold") {
      if (++i >= argc) return usage(argv[0]);
      options.threshold_pct = std::strtod(argv[i], nullptr);
    } else if (flag == "--metric") {
      // Only median_ns is supported; the flag exists so the run_all.sh
      // invocation is explicit about what the gate measures.
      if (++i >= argc) return usage(argv[0]);
      if (std::strcmp(argv[i], "median_ns") != 0) {
        std::fprintf(stderr, "bench_diff: unsupported metric %s\n", argv[i]);
        return 2;
      }
    } else if (flag == "--require-all") {
      options.require_all = true;
    } else if (flag == "--merge") {
      if (++i >= argc) return usage(argv[0]);
      merge_out = argv[i];
    } else if (flag == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!flag.empty() && flag[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(flag);
    }
  }

  if (!merge_out.empty()) {
    if (files.empty()) return usage(argv[0]);
    try {
      return merge_documents(merge_out, files);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_diff: %s\n", e.what());
      return 2;
    }
  }
  if (files.size() < 2) return usage(argv[0]);

  try {
    // The committed baseline is a "merged" document with
    // "suite/name"-qualified names and suite "merged"; plain harness
    // output qualifies as "<suite>/<name>". Handle both by qualifying
    // with the document suite unless the name already contains it.
    auto load_qualified = [](const std::string& path) {
      std::vector<BenchEntry> entries = load_bench_file(path);
      for (BenchEntry& entry : entries) {
        if (entry.suite == "merged") {
          // Names are pre-qualified; strip the synthetic suite.
          const auto slash = entry.name.find('/');
          if (slash != std::string::npos) {
            entry.suite = entry.name.substr(0, slash);
            entry.name = entry.name.substr(slash + 1);
          }
        }
      }
      return entries;
    };
    const std::vector<BenchEntry> baseline = load_qualified(files[0]);
    std::vector<BenchEntry> current;
    for (std::size_t i = 1; i < files.size(); ++i) {
      std::vector<BenchEntry> entries = load_qualified(files[i]);
      current.insert(current.end(), entries.begin(), entries.end());
    }
    const DiffReport report = diff_benchmarks(baseline, current, options);
    write_diff_table(report, options, std::cout);
    const int code = report.exit_code(options);
    if (code != 0) {
      std::printf("bench_diff: FAIL (threshold %.1f%%)\n",
                  options.threshold_pct);
    } else {
      std::printf("bench_diff: ok (threshold %.1f%%)\n",
                  options.threshold_pct);
    }
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
