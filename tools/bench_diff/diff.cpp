#include "diff.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bench_json.h"

namespace triad::tools {

std::vector<BenchEntry> load_bench_document(const JsonValue& doc) {
  const std::string& schema = doc.at("schema").as_string();
  if (schema != "triad-bench-v1") {
    throw std::runtime_error("unsupported schema '" + schema +
                             "' (want triad-bench-v1)");
  }
  const std::string& suite = doc.at("suite").as_string();
  std::vector<BenchEntry> entries;
  for (const JsonValue& bench : doc.at("benchmarks").as_array()) {
    BenchEntry entry;
    entry.suite = suite;
    entry.name = bench.at("name").as_string();
    entry.median_ns = bench.at("median_ns").as_number();
    entry.p95_ns = bench.at("p95_ns").as_number();
    entry.min_ns = bench.at("min_ns").as_number();
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<BenchEntry> load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return load_bench_document(parse_json_or_throw(text.str()));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

namespace {

std::string qualified(const BenchEntry& entry) {
  return entry.suite + "/" + entry.name;
}

}  // namespace

int DiffReport::exit_code(const DiffOptions& options) const {
  for (const DiffRow& row : rows) {
    if (row.status == DiffStatus::kRegression) return 1;
    if (row.status == DiffStatus::kMissing && options.require_all) return 1;
  }
  return 0;
}

DiffReport diff_benchmarks(const std::vector<BenchEntry>& baseline,
                           const std::vector<BenchEntry>& current,
                           const DiffOptions& options) {
  DiffReport report;
  auto find_current = [&](const std::string& name) -> const BenchEntry* {
    const BenchEntry* found = nullptr;
    for (const BenchEntry& entry : current) {
      if (qualified(entry) == name) found = &entry;  // last wins
    }
    return found;
  };

  for (const BenchEntry& base : baseline) {
    DiffRow row;
    row.name = qualified(base);
    row.baseline_median_ns = base.median_ns;
    const BenchEntry* cur = find_current(row.name);
    if (cur == nullptr) {
      row.status = DiffStatus::kMissing;
      report.rows.push_back(std::move(row));
      continue;
    }
    row.current_median_ns = cur->median_ns;
    row.delta_pct = base.median_ns > 0.0
                        ? (cur->median_ns - base.median_ns) / base.median_ns *
                              100.0
                        : 0.0;
    row.status = row.delta_pct > options.threshold_pct
                     ? DiffStatus::kRegression
                     : DiffStatus::kOk;
    report.rows.push_back(std::move(row));
  }

  for (const BenchEntry& cur : current) {
    const std::string name = qualified(cur);
    bool in_baseline = false;
    for (const BenchEntry& base : baseline) {
      if (qualified(base) == name) {
        in_baseline = true;
        break;
      }
    }
    if (!in_baseline) {
      DiffRow row;
      row.name = name;
      row.status = DiffStatus::kNew;
      row.current_median_ns = cur.median_ns;
      report.rows.push_back(std::move(row));
    }
  }
  return report;
}

void write_diff_table(const DiffReport& report, const DiffOptions& options,
                      std::ostream& out) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %14s %14s %9s  %s\n", "benchmark",
                "baseline_ns", "current_ns", "delta", "status");
  out << line;
  for (const DiffRow& row : report.rows) {
    const char* status = "ok";
    switch (row.status) {
      case DiffStatus::kOk: status = "ok"; break;
      case DiffStatus::kRegression: status = "REGRESSION"; break;
      case DiffStatus::kMissing:
        status = options.require_all ? "MISSING" : "missing (warn)";
        break;
      case DiffStatus::kNew: status = "new"; break;
    }
    if (row.status == DiffStatus::kMissing) {
      std::snprintf(line, sizeof(line), "%-44s %14.1f %14s %9s  %s\n",
                    row.name.c_str(), row.baseline_median_ns, "-", "-", status);
    } else if (row.status == DiffStatus::kNew) {
      std::snprintf(line, sizeof(line), "%-44s %14s %14.1f %9s  %s\n",
                    row.name.c_str(), "-", row.current_median_ns, "-", status);
    } else {
      std::snprintf(line, sizeof(line), "%-44s %14.1f %14.1f %+8.1f%%  %s\n",
                    row.name.c_str(), row.baseline_median_ns,
                    row.current_median_ns, row.delta_pct, status);
    }
    out << line;
  }
}

}  // namespace triad::tools
