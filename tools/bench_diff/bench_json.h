// Minimal recursive-descent JSON reader for perf tooling and tests.
//
// Scope: full JSON grammar (objects, arrays, strings with escapes,
// numbers, booleans, null) with no streaming, no comments, and no
// attempt at speed — inputs are kilobyte-scale BENCH files and profiler
// traces. Object member order is preserved so tests can assert the
// fixed-key-order contract of triad-bench-v1 documents.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace triad::tools {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Members in document order (the order the keys appeared).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               std::shared_ptr<JsonArray>,
                               std::shared_ptr<JsonObject>>;

  JsonValue() : storage_(nullptr) {}
  explicit JsonValue(Storage storage) : storage_(std::move(storage)) {}

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] bool is_bool() const;
  [[nodiscard]] bool is_number() const;
  [[nodiscard]] bool is_string() const;
  [[nodiscard]] bool is_array() const;
  [[nodiscard]] bool is_object() const;

  /// Typed accessors; wrong-type access throws std::runtime_error with
  /// the expected/actual kinds (tool code wants loud failures).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// find() that throws when the key is missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

 private:
  Storage storage_;
};

/// Parses one JSON document (must consume the whole input apart from
/// trailing whitespace). On failure returns false and sets `error` to
/// "offset N: message".
bool parse_json(const std::string& text, JsonValue* out, std::string* error);

/// parse_json that throws std::runtime_error on failure.
JsonValue parse_json_or_throw(const std::string& text);

}  // namespace triad::tools
