#include "bench_json.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace triad::tools {

namespace {

const char* kind_name(const JsonValue::Storage& storage) {
  switch (storage.index()) {
    case 0: return "null";
    case 1: return "bool";
    case 2: return "number";
    case 3: return "string";
    case 4: return "array";
    case 5: return "object";
    default: return "?";
  }
}

[[noreturn]] void type_error(const char* expected,
                             const JsonValue::Storage& storage) {
  throw std::runtime_error(std::string("json: expected ") + expected +
                           ", got " + kind_name(storage));
}

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = "offset " + std::to_string(pos_) + ": " + message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] int peek() const {
    return pos_ < text_.size() ? static_cast<unsigned char>(text_[pos_]) : -1;
  }

  bool consume_literal(const char* literal) {
    const std::size_t start = pos_;
    for (const char* p = literal; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        pos_ = start;
        return fail(std::string("expected '") + literal + "'");
      }
    }
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (depth_ > 64) return fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue(JsonValue::Storage{std::move(s)});
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        *out = JsonValue(JsonValue::Storage{true});
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        *out = JsonValue(JsonValue::Storage{false});
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        *out = JsonValue(JsonValue::Storage{nullptr});
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    ++pos_;  // '{'
    ++depth_;
    auto object = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      *out = JsonValue(JsonValue::Storage{std::move(object)});
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      object->emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        *out = JsonValue(JsonValue::Storage{std::move(object)});
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    ++pos_;  // '['
    ++depth_;
    auto array = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      *out = JsonValue(JsonValue::Storage{std::move(array)});
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      array->push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        *out = JsonValue(JsonValue::Storage{std::move(array)});
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    if (peek() != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += 10u + static_cast<unsigned>(h - 'a');
              else if (h >= 'A' && h <= 'F') code += 10u + static_cast<unsigned>(h - 'A');
              else return fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are out
            // of scope for the documents this tool reads).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("bad escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(peek()) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(peek()) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(peek()) != 0) ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("bad number '" + token + "'");
    }
    *out = JsonValue(JsonValue::Storage{value});
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::is_null() const { return storage_.index() == 0; }
bool JsonValue::is_bool() const { return storage_.index() == 1; }
bool JsonValue::is_number() const { return storage_.index() == 2; }
bool JsonValue::is_string() const { return storage_.index() == 3; }
bool JsonValue::is_array() const { return storage_.index() == 4; }
bool JsonValue::is_object() const { return storage_.index() == 5; }

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error("bool", storage_);
  return std::get<bool>(storage_);
}
double JsonValue::as_number() const {
  if (!is_number()) type_error("number", storage_);
  return std::get<double>(storage_);
}
const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error("string", storage_);
  return std::get<std::string>(storage_);
}
const JsonArray& JsonValue::as_array() const {
  if (!is_array()) type_error("array", storage_);
  return *std::get<std::shared_ptr<JsonArray>>(storage_);
}
const JsonObject& JsonValue::as_object() const {
  if (!is_object()) type_error("object", storage_);
  return *std::get<std::shared_ptr<JsonObject>>(storage_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return *value;
}

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.parse_document(out);
}

JsonValue parse_json_or_throw(const std::string& text) {
  JsonValue value;
  std::string error;
  if (!parse_json(text, &value, &error)) {
    throw std::runtime_error("json: " + error);
  }
  return value;
}

}  // namespace triad::tools
